//! High-level factorization front-end.
//!
//! [`Factorizer`] is the builder-style entry point used by the BLASYS
//! core: it selects the algorithm (ASSO with threshold sweep by
//! default, as in the paper), the algebra (semi-ring OR vs field XOR
//! decompressors) and the QoR weighting, and handles the trivial
//! `f ≥ min(n, m)` cases exactly.

use std::sync::Arc;
use std::time::Instant;

use blasys_par::{in_worker, Parallelism, Workers};

use crate::asso::{asso_sweep_counted, AssoParams};
use crate::grecon::grecond;
use crate::matrix::BoolMatrix;
use crate::metrics::{hamming, weighted_error};
use crate::obs::FactorizeCounters;
use crate::xor::{factorize_xor, XorParams};

/// The algebra the decompressor network is built in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algebra {
    /// AND/OR Boolean semi-ring — OR-gate decompressor (paper default).
    #[default]
    SemiRing,
    /// GF(2) field — XOR-gate decompressor.
    Field,
}

/// Which factorization heuristic to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// ASSO with a sweep over association thresholds (paper default).
    Asso {
        /// Candidate thresholds; the best-scoring one wins.
        thresholds: Vec<f64>,
    },
    /// GreConD-style greedy concept cover (never covers 0s).
    GreConD,
}

impl Default for Algorithm {
    fn default() -> Algorithm {
        Algorithm::Asso {
            thresholds: vec![0.3, 0.5, 0.7, 0.85, 0.95, 1.0],
        }
    }
}

/// Result of a factorization: `M ≈ B ∘ C`.
#[derive(Debug, Clone, PartialEq)]
pub struct Factorization {
    b: BoolMatrix,
    c: BoolMatrix,
    algebra: Algebra,
}

impl Factorization {
    /// Assemble from parts (shapes must be compatible).
    ///
    /// # Panics
    ///
    /// Panics if `b.num_cols() != c.num_rows()`.
    pub fn new(b: BoolMatrix, c: BoolMatrix, algebra: Algebra) -> Factorization {
        assert_eq!(b.num_cols(), c.num_rows(), "inner dimension mismatch");
        Factorization { b, c, algebra }
    }

    /// The `n × f` usage matrix (the *compressor* truth table).
    pub fn b(&self) -> &BoolMatrix {
        &self.b
    }

    /// The `f × m` basis matrix (the *decompressor* wiring).
    pub fn c(&self) -> &BoolMatrix {
        &self.c
    }

    /// The algebra the product is evaluated in.
    pub fn algebra(&self) -> Algebra {
        self.algebra
    }

    /// Factorization degree `f`.
    pub fn degree(&self) -> usize {
        self.b.num_cols()
    }

    /// The reconstructed matrix `B ∘ C`.
    pub fn product(&self) -> BoolMatrix {
        match self.algebra {
            Algebra::SemiRing => self.b.or_product(&self.c),
            Algebra::Field => self.b.xor_product(&self.c),
        }
    }

    /// Hamming distance between the reconstruction and `m`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn error(&self, m: &BoolMatrix) -> f64 {
        hamming(&self.product(), m) as f64
    }

    /// Column-weighted reconstruction error.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or weight count mismatches.
    pub fn weighted_error(&self, m: &BoolMatrix, weights: &[f64]) -> f64 {
        weighted_error(&self.product(), m, weights)
    }
}

/// Builder-style factorization front-end.
///
/// # Example
///
/// ```
/// use blasys_bmf::{Algebra, BoolMatrix, Factorizer};
/// use blasys_bmf::metrics::value_weights;
///
/// let m = BoolMatrix::from_fn(16, 4, |i, j| (i >> j) & 1 == 1);
/// let fac = Factorizer::new()
///     .algebra(Algebra::SemiRing)
///     .weights(value_weights(4))
///     .factorize(&m, 2);
/// assert_eq!(fac.degree(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Factorizer {
    algorithm: Algorithm,
    algebra: Algebra,
    weights: Option<Vec<f64>>,
    refine_rounds: usize,
    counters: Option<Arc<FactorizeCounters>>,
}

impl Factorizer {
    /// A factorizer with the paper defaults: ASSO + threshold sweep,
    /// OR semi-ring, uniform weights, one refinement round.
    pub fn new() -> Factorizer {
        Factorizer {
            refine_rounds: 1,
            ..Factorizer::default()
        }
    }

    /// Select the factorization algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Factorizer {
        self.algorithm = algorithm;
        self
    }

    /// Select semi-ring (OR) or field (XOR) algebra.
    pub fn algebra(mut self, algebra: Algebra) -> Factorizer {
        self.algebra = algebra;
        self
    }

    /// Set per-column QoR weights (the paper's weighted-QoR mode).
    pub fn weights(mut self, weights: Vec<f64>) -> Factorizer {
        self.weights = Some(weights);
        self
    }

    /// Clear weights (uniform / standard L2 behaviour).
    pub fn uniform(mut self) -> Factorizer {
        self.weights = None;
        self
    }

    /// Number of alternating refinement rounds after the greedy phase.
    pub fn refine_rounds(mut self, rounds: usize) -> Factorizer {
        self.refine_rounds = rounds;
        self
    }

    /// Attach a `bmf.*` counter block; every clone of this factorizer
    /// accumulates into it.
    pub fn with_counters(mut self, counters: Arc<FactorizeCounters>) -> Factorizer {
        self.counters = Some(counters);
        self
    }

    /// The attached counter block, if any.
    pub fn counters(&self) -> Option<&Arc<FactorizeCounters>> {
        self.counters.as_ref()
    }

    /// The algebra this factorizer is configured for.
    pub fn algebra_kind(&self) -> Algebra {
        self.algebra
    }

    /// The algorithm this factorizer is configured for.
    pub fn algorithm_kind(&self) -> &Algorithm {
        &self.algorithm
    }

    /// Factorize `m` at degree `f`.
    ///
    /// Degrees `f ≥ m.num_cols()` return an exact identity-style
    /// factorization (matching Algorithm 1's starting point where
    /// `f_i = m_i` means "unchanged subcircuit"). Tiny instances
    /// (≤ 64 rows, ≤ 5 columns, semi-ring algebra) are solved *optimally*
    /// by exhaustive basis enumeration instead of heuristically.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    pub fn factorize(&self, m: &BoolMatrix, f: usize) -> Factorization {
        self.factorize_on(m, f, Workers::Transient(Parallelism::Serial))
    }

    /// [`factorize`](Factorizer::factorize) with an explicit execution
    /// context: candidate scoring (heuristic path) and basis
    /// enumeration (exhaustive tiny-instance path) run on `workers`.
    ///
    /// The result is **bit-identical at any worker count** — both
    /// parallel reductions keep the first best under the serial scan
    /// order — so callers may freely mix serial and pooled runs.
    /// Records wall time and candidate counts on the attached
    /// [`FactorizeCounters`], if any.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0`.
    pub fn factorize_on(&self, m: &BoolMatrix, f: usize, workers: Workers<'_>) -> Factorization {
        let t0 = Instant::now();
        let fac = self.factorize_inner(m, f, workers);
        if let Some(c) = &self.counters {
            c.factorize_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        fac
    }

    fn factorize_inner(&self, m: &BoolMatrix, f: usize, workers: Workers<'_>) -> Factorization {
        assert!(f >= 1, "factorization degree must be at least 1");
        let cols = m.num_cols();
        if f < cols && cols <= 5 && m.num_rows() <= 64 && matches!(self.algebra, Algebra::SemiRing)
        {
            return self.exact_small(m, f, workers);
        }
        if f >= cols {
            // Identity factorization: B = M (padded), C = I (padded).
            let mut b = BoolMatrix::zeroed(m.num_rows(), f);
            for i in 0..m.num_rows() {
                b.set_row(i, m.row(i));
            }
            let c = BoolMatrix::from_fn(f, cols, |l, j| l == j);
            return Factorization::new(b, c, self.algebra);
        }
        match self.algebra {
            Algebra::SemiRing => {
                let (b, c) = match &self.algorithm {
                    Algorithm::Asso { thresholds } => {
                        let base = AssoParams {
                            weights: self.weights.clone(),
                            refine_rounds: self.refine_rounds,
                            ..AssoParams::default()
                        };
                        asso_sweep_counted(
                            m,
                            f,
                            thresholds,
                            &base,
                            workers,
                            self.counters.as_deref(),
                        )
                    }
                    Algorithm::GreConD => grecond(m, f),
                };
                Factorization::new(b, c, Algebra::SemiRing)
            }
            Algebra::Field => {
                let params = XorParams {
                    weights: self.weights.clone(),
                    max_rounds: 4 + 2 * self.refine_rounds,
                };
                let (b, c) = factorize_xor(m, f, &params);
                Factorization::new(b, c, Algebra::Field)
            }
        }
    }
}

/// Derive a degree `f−1` factorization from a degree-`f` one by
/// dropping the basis row whose removal hurts least, then re-solving
/// the usage matrix optimally (exhaustive over `2^(f−1)` subsets).
///
/// This "nested truncation" keeps factor complexity monotone across
/// degrees: the truncated factors are structurally a subset of the
/// parent's, so their hardware is never larger.
///
/// # Panics
///
/// Panics if `fac.degree() < 2` or `fac.degree() > 13`.
pub fn truncated(fac: &Factorization, m: &BoolMatrix, weights: Option<&[f64]>) -> Factorization {
    let f = fac.degree();
    assert!(f >= 2, "cannot truncate below degree 1");
    assert!(f <= 13, "exhaustive usage solve limited to small degrees");
    let cols = m.num_cols();
    let n = m.num_rows();
    let uniform;
    let w: &[f64] = match weights {
        Some(w) => w,
        None => {
            uniform = vec![1.0; cols];
            &uniform
        }
    };
    let wsum = |mut bits: u64| -> f64 {
        let mut s = 0.0;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            s += w[j];
        }
        s
    };
    let is_field = matches!(fac.algebra(), Algebra::Field);
    let mut best: Option<(f64, BoolMatrix, BoolMatrix)> = None;
    for drop in 0..f {
        let kept: Vec<usize> = (0..f).filter(|&l| l != drop).collect();
        let mut c = BoolMatrix::zeroed(f - 1, cols);
        for (l_new, &l_old) in kept.iter().enumerate() {
            c.set_row(l_new, fac.c().row(l_old));
        }
        // Optimal usage per row over the reduced basis.
        let mut acc_of = vec![0u64; 1usize << (f - 1)];
        for s in 1usize..1 << (f - 1) {
            let low = s.trailing_zeros() as usize;
            let prev = acc_of[s & (s - 1)];
            acc_of[s] = if is_field {
                prev ^ c.row(low)
            } else {
                prev | c.row(low)
            };
        }
        let mut b = BoolMatrix::zeroed(n, f - 1);
        let mut err = 0.0;
        for i in 0..n {
            let target = m.row(i);
            let (mut best_s, mut best_e) = (0usize, f64::INFINITY);
            for (s, &v) in acc_of.iter().enumerate() {
                let e = wsum(v ^ target);
                if e < best_e {
                    best_e = e;
                    best_s = s;
                }
            }
            err += best_e;
            b.set_row(i, best_s as u64);
        }
        if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
            best = Some((err, b, c));
        }
    }
    let (_, b, c) = best.expect("degree >= 2 always yields a candidate");
    Factorization::new(b, c, fac.algebra())
}

impl Factorizer {
    /// Optimal OR-semi-ring factorization of a tiny matrix by
    /// exhaustive enumeration of the basis rows (all non-zero column
    /// patterns) with the exact per-row usage solve.
    ///
    /// Enumeration fans out over the first basis pattern's index, one
    /// task per index; each task scans its lexicographic sub-range in
    /// serial order and the reduction keeps the first strictly-lowest
    /// error in ascending first-index order — exactly the serial scan's
    /// winner, at any worker count.
    fn exact_small(&self, m: &BoolMatrix, f: usize, workers: Workers<'_>) -> Factorization {
        let cols = m.num_cols();
        let n = m.num_rows();
        let uniform;
        let weights: &[f64] = match &self.weights {
            Some(w) => w,
            None => {
                uniform = vec![1.0; cols];
                &uniform
            }
        };
        let wsum = |mut bits: u64| -> f64 {
            let mut s = 0.0;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                s += weights[j];
            }
            s
        };
        let patterns: Vec<u64> = (1u64..1 << cols).collect();
        let workers = if in_worker() {
            Workers::Transient(Parallelism::Serial)
        } else {
            workers
        };
        // Enumerate combinations of `f` basis patterns (with smaller
        // index first to avoid permutations).
        fn combos(
            patterns: &[u64],
            basis: &mut Vec<usize>,
            depth: usize,
            start: usize,
            eval: &mut dyn FnMut(&[usize]),
        ) {
            if depth == basis.len() {
                eval(basis);
                return;
            }
            for i in start..patterns.len() {
                basis[depth] = i;
                combos(patterns, basis, depth + 1, i + 1, eval);
            }
        }
        type Best = Option<(f64, Vec<u64>, Vec<u64>)>;
        let firsts = patterns.len() - (f - 1);
        let locals: Vec<(u64, Best)> = workers.run(firsts, |i0| {
            let mut best: Best = None;
            let mut scored = 0u64;
            let mut eval = |chosen: &[usize]| {
                scored += 1;
                // Optimal usage per row via subset-OR DP.
                let mut or_of = vec![0u64; 1usize << f];
                for s in 1usize..1 << f {
                    let low = s.trailing_zeros() as usize;
                    or_of[s] = or_of[s & (s - 1)] | patterns[chosen[low]];
                }
                let mut err = 0.0;
                let mut usage = Vec::with_capacity(n);
                for i in 0..n {
                    let target = m.row(i);
                    let (mut best_s, mut best_e) = (0usize, f64::INFINITY);
                    for (s, &or_val) in or_of.iter().enumerate() {
                        let e = wsum(or_val ^ target);
                        if e < best_e {
                            best_e = e;
                            best_s = s;
                        }
                    }
                    err += best_e;
                    usage.push(best_s as u64);
                }
                if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
                    let c_rows: Vec<u64> = chosen.iter().map(|&i| patterns[i]).collect();
                    best = Some((err, usage, c_rows));
                }
            };
            let mut basis = vec![0usize; f];
            basis[0] = i0;
            combos(&patterns, &mut basis, 1, i0 + 1, &mut eval);
            (scored, best)
        });
        let mut best: Best = None;
        let mut scored = 0u64;
        for (s, local) in locals {
            scored += s;
            if let Some(local) = local {
                if best.as_ref().is_none_or(|(e, _, _)| local.0 < *e) {
                    best = Some(local);
                }
            }
        }
        if let Some(c) = &self.counters {
            c.candidates_scored.add(scored);
        }
        let (_, usage, c_rows) = best.expect("at least one basis combination");
        let mut b = BoolMatrix::zeroed(n, f);
        for (i, &u) in usage.iter().enumerate() {
            b.set_row(i, u);
        }
        let mut c = BoolMatrix::zeroed(f, cols);
        for (l, &row) in c_rows.iter().enumerate() {
            c.set_row(l, row);
        }
        Factorization::new(b, c, Algebra::SemiRing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoolMatrix {
        BoolMatrix::from_fn(16, 5, |i, j| (i * 3 + j * j) % 4 == 1 || i == 2 * j)
    }

    #[test]
    fn identity_factorization_at_full_degree() {
        let m = sample();
        for f in 5..=7 {
            let fac = Factorizer::new().factorize(&m, f);
            assert_eq!(fac.error(&m), 0.0, "f={f} must be exact");
            assert_eq!(fac.degree(), f);
        }
    }

    #[test]
    fn semiring_and_field_both_work() {
        let m = sample();
        for algebra in [Algebra::SemiRing, Algebra::Field] {
            let fac = Factorizer::new().algebra(algebra).factorize(&m, 3);
            assert_eq!(fac.algebra(), algebra);
            assert_eq!(fac.product().num_rows(), 16);
            assert_eq!(fac.product().num_cols(), 5);
        }
    }

    #[test]
    fn grecond_path_never_overcovers() {
        let m = sample();
        let fac = Factorizer::new()
            .algorithm(Algorithm::GreConD)
            .factorize(&m, 2);
        let p = fac.product();
        for i in 0..m.num_rows() {
            assert_eq!(p.row(i) & !m.row(i), 0);
        }
    }

    #[test]
    fn weighted_error_accessor() {
        let m = sample();
        let fac = Factorizer::new().factorize(&m, 2);
        let w = crate::metrics::uniform_weights(5);
        assert_eq!(fac.error(&m), fac.weighted_error(&m, &w));
    }

    #[test]
    fn degenerate_single_column() {
        let m = BoolMatrix::from_fn(8, 1, |i, _| i % 2 == 0);
        let fac = Factorizer::new().factorize(&m, 1);
        assert_eq!(fac.error(&m), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_degree_rejected() {
        let m = sample();
        let _ = Factorizer::new().factorize(&m, 0);
    }

    #[test]
    fn tiny_instances_are_solved_optimally() {
        // 16 rows x 4 cols triggers the exhaustive path; cross-check
        // against the heuristic on a matrix where greedy ASSO is known
        // to be suboptimal.
        let m = BoolMatrix::from_fn(16, 4, |i, j| (i >> j) & 1 == 1 || i % 5 == j);
        for f in 1..4 {
            let exact = Factorizer::new().factorize(&m, f);
            // Build a wider copy so the heuristic path runs on the same
            // function (pad with a zero column and ignore it).
            let wide = BoolMatrix::from_fn(16, 6, |i, j| j < 4 && m.get(i, j));
            let heur = Factorizer::new().factorize(&wide, f);
            let heur_err: usize = (0..16)
                .map(|i| {
                    let got = heur.product().row(i) & 0b1111;
                    (got ^ m.row(i)).count_ones() as usize
                })
                .sum();
            assert!(
                exact.error(&m) as usize <= heur_err,
                "f={f}: exact {} vs heuristic {heur_err}",
                exact.error(&m)
            );
        }
    }

    #[test]
    fn exact_small_recovers_exactly_factorable() {
        let m = BoolMatrix::from_rows(4, &[0b0011, 0b1100, 0b1111, 0b0000]);
        let fac = Factorizer::new().factorize(&m, 2);
        assert_eq!(fac.error(&m), 0.0);
    }

    #[test]
    fn factorize_on_is_bit_identical_across_worker_counts() {
        use blasys_par::{Parallelism, Workers};
        // Heuristic path (6 cols) and exhaustive tiny path (4 cols).
        let wide = BoolMatrix::from_fn(40, 6, |i, j| (i * 5 + j * j) % 3 == 0);
        let tiny = BoolMatrix::from_fn(16, 4, |i, j| (i >> j) & 1 == 1 || i % 5 == j);
        for m in [&wide, &tiny] {
            for f in 1..m.num_cols() {
                let serial = Factorizer::new().factorize(m, f);
                for threads in [2, 4, 8] {
                    let par = Factorizer::new().factorize_on(
                        m,
                        f,
                        Workers::Transient(Parallelism::Threads(threads)),
                    );
                    assert_eq!(serial, par, "cols={} f={f} threads={threads}", m.num_cols());
                }
            }
        }
    }

    #[test]
    fn counters_record_factorization_work() {
        use crate::obs::FactorizeCounters;
        use std::sync::Arc;
        let registry = blasys_obs::Registry::default();
        let counters = Arc::new(FactorizeCounters::register(&registry));
        let m = BoolMatrix::from_fn(16, 4, |i, j| (i >> j) & 1 == 1);
        let fz = Factorizer::new().with_counters(counters.clone());
        let _ = fz.factorize(&m, 2);
        let snap = registry.snapshot();
        assert!(snap.counter("bmf.candidates_scored").unwrap() > 0);
        assert_eq!(counters.factorize_ns.count(), 1);
        // Counter totals are deterministic across worker counts.
        let registry2 = blasys_obs::Registry::default();
        let counters2 = Arc::new(FactorizeCounters::register(&registry2));
        let fz2 = Factorizer::new().with_counters(counters2);
        use blasys_par::{Parallelism, Workers};
        let _ = fz2.factorize_on(&m, 2, Workers::Transient(Parallelism::Threads(4)));
        assert_eq!(
            snap.counter("bmf.candidates_scored"),
            registry2.snapshot().counter("bmf.candidates_scored")
        );
    }

    #[test]
    fn truncation_reduces_degree_by_one() {
        let m = BoolMatrix::from_fn(32, 6, |i, j| (i * 7 + j * 3) % 5 < 2);
        let fac = Factorizer::new().factorize(&m, 4);
        let cut = truncated(&fac, &m, None);
        assert_eq!(cut.degree(), 3);
        // Basis rows of the truncation are a subset of the parent's.
        for l in 0..3 {
            let row = cut.c().row(l);
            assert!(
                (0..4).any(|p| fac.c().row(p) == row),
                "truncated basis must nest"
            );
        }
    }

    #[test]
    fn truncation_error_bounded_by_parent_plus_dropped() {
        let m = BoolMatrix::from_fn(64, 5, |i, j| (i >> j) & 1 == 1 && i % 3 != 0);
        let fac = Factorizer::new().factorize(&m, 3);
        let parent_err = fac.error(&m);
        let cut = truncated(&fac, &m, None);
        // Truncation can't do better than the parent (it has less
        // expressive power) but must stay a valid factorization.
        assert!(cut.error(&m) >= parent_err - 1e-9);
        assert_eq!(cut.product().num_cols(), m.num_cols());
    }

    #[test]
    fn truncation_works_for_field_algebra() {
        let m = BoolMatrix::from_fn(16, 4, |i, j| (i ^ (i >> 1)) >> j & 1 == 1);
        let fac = Factorizer::new().algebra(Algebra::Field).factorize(&m, 3);
        let cut = truncated(&fac, &m, None);
        assert_eq!(cut.degree(), 2);
        assert_eq!(cut.algebra(), Algebra::Field);
    }
}
