//! Bit-packed Boolean matrices with up to 64 columns.
//!
//! Truth tables in BLASYS have at most `m = 10` output columns, so one
//! `u64` word per row is sufficient and keeps row operations (the inner
//! loop of every factorization algorithm) single-instruction.

use std::fmt;

/// A dense Boolean matrix with at most 64 columns, one word per row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BoolMatrix {
    cols: usize,
    rows: Vec<u64>,
}

impl BoolMatrix {
    /// Maximum supported column count.
    pub const MAX_COLS: usize = 64;

    /// An all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 64`.
    pub fn zeroed(rows: usize, cols: usize) -> BoolMatrix {
        assert!(cols <= Self::MAX_COLS, "at most 64 columns supported");
        BoolMatrix {
            cols,
            rows: vec![0; rows],
        }
    }

    /// Build from row words; bit `j` of `rows[i]` is entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `cols > 64` or a row has bits set beyond `cols`.
    pub fn from_rows(cols: usize, rows: &[u64]) -> BoolMatrix {
        assert!(cols <= Self::MAX_COLS, "at most 64 columns supported");
        let mask = Self::col_mask(cols);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(r & !mask, 0, "row {i} has bits beyond column {cols}");
        }
        BoolMatrix {
            cols,
            rows: rows.to_vec(),
        }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> bool,
    ) -> BoolMatrix {
        let mut m = BoolMatrix::zeroed(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    fn col_mask(cols: usize) -> u64 {
        if cols == 64 {
            !0
        } else {
            (1u64 << cols) - 1
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(col < self.cols);
        self.rows[row] >> col & 1 == 1
    }

    /// Set entry at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(col < self.cols);
        if value {
            self.rows[row] |= 1 << col;
        } else {
            self.rows[row] &= !(1 << col);
        }
    }

    /// The packed word of one row (bit `j` = column `j`).
    pub fn row(&self, row: usize) -> u64 {
        self.rows[row]
    }

    /// Overwrite one row from a packed word.
    ///
    /// # Panics
    ///
    /// Panics if bits beyond the column count are set.
    pub fn set_row(&mut self, row: usize, word: u64) {
        assert_eq!(word & !Self::col_mask(self.cols), 0, "stray bits");
        self.rows[row] = word;
    }

    /// Iterate over packed rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = u64> + '_ {
        self.rows.iter().copied()
    }

    /// Column `j` as a packed bitset over rows (64 rows per word).
    pub fn column_bits(&self, col: usize) -> Vec<u64> {
        assert!(col < self.cols);
        let words = self.rows.len().div_ceil(64);
        let mut out = vec![0u64; words];
        for (i, &r) in self.rows.iter().enumerate() {
            if r >> col & 1 == 1 {
                out[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    /// Total number of ones.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Number of ones in one column.
    pub fn column_count_ones(&self, col: usize) -> usize {
        assert!(col < self.cols);
        self.rows.iter().filter(|&&r| r >> col & 1 == 1).count()
    }

    /// Transposed copy.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than 64 rows (the transpose would
    /// exceed the column limit).
    pub fn transposed(&self) -> BoolMatrix {
        assert!(
            self.rows.len() <= Self::MAX_COLS,
            "too many rows to transpose"
        );
        BoolMatrix::from_fn(self.cols, self.rows.len(), |i, j| self.get(j, i))
    }

    /// Boolean semi-ring product `self ∘ other` (AND for products, OR
    /// for sums). `self` is `n × f`, `other` is `f × m`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn or_product(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.cols, other.num_rows(), "inner dimension mismatch");
        let mut out = BoolMatrix::zeroed(self.num_rows(), other.num_cols());
        for (i, &brow) in self.rows.iter().enumerate() {
            let mut acc = 0u64;
            let mut bits = brow;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc |= other.rows[l];
            }
            out.rows[i] = acc;
        }
        out
    }

    /// GF(2) field product (AND for products, XOR for sums).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn xor_product(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.cols, other.num_rows(), "inner dimension mismatch");
        let mut out = BoolMatrix::zeroed(self.num_rows(), other.num_cols());
        for (i, &brow) in self.rows.iter().enumerate() {
            let mut acc = 0u64;
            let mut bits = brow;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                acc ^= other.rows[l];
            }
            out.rows[i] = acc;
        }
        out
    }
}

impl fmt::Display for BoolMatrix {
    /// Rows of `0`/`1` characters, one line per row (column 0 leftmost).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.num_rows() {
            for j in 0..self.cols {
                f.write_str(if self.get(i, j) { "1" } else { "0" })?;
            }
            if i + 1 < self.num_rows() {
                f.write_str("\n")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = BoolMatrix::zeroed(3, 5);
        m.set(0, 0, true);
        m.set(2, 4, true);
        assert!(m.get(0, 0));
        assert!(m.get(2, 4));
        assert!(!m.get(1, 2));
        m.set(0, 0, false);
        assert!(!m.get(0, 0));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn from_rows_validates() {
        let m = BoolMatrix::from_rows(3, &[0b101, 0b010]);
        assert_eq!(m.num_rows(), 2);
        assert!(m.get(0, 0) && !m.get(0, 1) && m.get(0, 2));
    }

    #[test]
    #[should_panic(expected = "bits beyond")]
    fn from_rows_rejects_stray_bits() {
        let _ = BoolMatrix::from_rows(2, &[0b100]);
    }

    #[test]
    fn or_product_example() {
        // Figure 1 of the paper illustrates OR-semiring products; check a
        // hand-computed case. B: 3x2, C: 2x2.
        let b = BoolMatrix::from_rows(2, &[0b01, 0b10, 0b11]);
        let c = BoolMatrix::from_rows(2, &[0b01, 0b11]);
        let m = b.or_product(&c);
        assert_eq!(m.row(0), 0b01); // row selects basis 0
        assert_eq!(m.row(1), 0b11); // basis 1
        assert_eq!(m.row(2), 0b11); // OR of both
    }

    #[test]
    fn xor_product_differs_from_or() {
        let b = BoolMatrix::from_rows(2, &[0b11]);
        let c = BoolMatrix::from_rows(2, &[0b01, 0b01]);
        assert_eq!(b.or_product(&c).row(0), 0b01);
        assert_eq!(b.xor_product(&c).row(0), 0b00); // 1 XOR 1 = 0
    }

    #[test]
    fn column_bits_match_get() {
        let m = BoolMatrix::from_fn(70, 3, |i, j| (i + j) % 3 == 0);
        for j in 0..3 {
            let col = m.column_bits(j);
            for i in 0..70 {
                assert_eq!(col[i / 64] >> (i % 64) & 1 == 1, m.get(i, j));
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = BoolMatrix::from_fn(5, 7, |i, j| i * 3 + j % 2 == j);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn column_count_ones_counts() {
        let m = BoolMatrix::from_rows(2, &[0b01, 0b01, 0b11]);
        assert_eq!(m.column_count_ones(0), 3);
        assert_eq!(m.column_count_ones(1), 1);
    }

    #[test]
    fn display_renders_bits() {
        let m = BoolMatrix::from_rows(2, &[0b01, 0b10]);
        assert_eq!(m.to_string(), "10\n01");
    }
}
