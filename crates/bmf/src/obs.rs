//! `bmf.*` metrics: factorization cost made visible next to the
//! engine's `qor.*` counters.
//!
//! All three instruments are attached to a
//! [`Factorizer`](crate::Factorizer) via
//! [`Factorizer::with_counters`](crate::Factorizer::with_counters) and
//! shared across its clones, so a whole profiling stage accumulates
//! into one block.
//!
//! # Counter determinism
//!
//! `bmf.windows_factorized` and `bmf.candidates_scored` are
//! **deterministic**: every candidate column (and every exhaustive
//! basis combination) is scored exactly once per greedy round
//! regardless of worker count, so the totals are bit-identical across
//! serial and parallel runs. `bmf.factorize_wall_ns` is a wall-clock
//! observation and makes no such promise.

use std::sync::Arc;

use blasys_obs::{Counter, Histogram, Registry};

/// Upper bounds (ns) for the factorize wall-time histogram: 1 µs to
/// 1 s, one decade per bucket.
const FACTORIZE_NS_BOUNDS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// The factorization counter block, registered under stable `bmf.*`
/// names. See the [module docs](self#counter-determinism) for which
/// counters are deterministic.
#[derive(Debug)]
pub struct FactorizeCounters {
    /// Windows profiled end to end (`bmf.windows_factorized`).
    /// Deterministic.
    pub windows: Arc<Counter>,
    /// ASSO candidate columns (and exhaustive basis combinations)
    /// scored (`bmf.candidates_scored`). Deterministic.
    pub candidates_scored: Arc<Counter>,
    /// Wall time of each
    /// [`Factorizer::factorize_on`](crate::Factorizer::factorize_on)
    /// call, in nanoseconds (`bmf.factorize_wall_ns`).
    pub factorize_ns: Arc<Histogram>,
}

impl FactorizeCounters {
    /// Create (or re-attach to) the `bmf.*` instruments of `registry`.
    pub fn register(registry: &Registry) -> FactorizeCounters {
        FactorizeCounters {
            windows: registry.counter("bmf.windows_factorized"),
            candidates_scored: registry.counter("bmf.candidates_scored"),
            factorize_ns: registry.histogram("bmf.factorize_wall_ns", &FACTORIZE_NS_BOUNDS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_under_stable_names() {
        let registry = Registry::default();
        let c = FactorizeCounters::register(&registry);
        c.windows.inc();
        c.candidates_scored.add(5);
        c.factorize_ns.observe(42_000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bmf.windows_factorized"), Some(1));
        assert_eq!(snap.counter("bmf.candidates_scored"), Some(5));
    }

    #[test]
    fn counters_shared_across_registrations() {
        let registry = Registry::default();
        let a = FactorizeCounters::register(&registry);
        let b = FactorizeCounters::register(&registry);
        a.windows.inc();
        b.windows.inc();
        assert_eq!(
            registry.snapshot().counter("bmf.windows_factorized"),
            Some(2)
        );
    }
}
