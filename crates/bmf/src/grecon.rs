//! GreConD-style greedy concept cover, an alternative BMF used as an
//! ablation baseline against ASSO.
//!
//! GreConD (Belohlavek & Vychodil) builds factors from *formal
//! concepts*: each factor is a (row set, column set) pair such that all
//! selected cells are 1 in `M`. It therefore never covers a 0 — the
//! residual error is purely the 1s left uncovered — which contrasts
//! with ASSO's willingness to trade false 1s for coverage.

use crate::matrix::BoolMatrix;

/// Factorize `m ≈ B ∘ C` (OR semi-ring) with at most `f` concept
/// factors. The product is always `≤ M` entry-wise ("from below").
///
/// # Panics
///
/// Panics if `f == 0`.
pub fn grecond(m: &BoolMatrix, f: usize) -> (BoolMatrix, BoolMatrix) {
    assert!(f >= 1, "factorization degree must be at least 1");
    let n = m.num_rows();
    let cols = m.num_cols();
    let mut b = BoolMatrix::zeroed(n, f);
    let mut c = BoolMatrix::zeroed(f, cols);
    // Uncovered 1-cells.
    let mut uncovered: Vec<u64> = (0..n).map(|i| m.row(i)).collect();

    for l in 0..f {
        // Greedily grow an attribute set d maximizing newly covered 1s.
        let mut d: u64 = 0;
        let mut best_cover = 0usize;
        loop {
            let mut best_j = None;
            for j in 0..cols {
                if d >> j & 1 == 1 {
                    continue;
                }
                let dj = d | 1 << j;
                let cover = coverage(m, &uncovered, dj);
                if cover > best_cover {
                    best_cover = cover;
                    best_j = Some(j);
                }
            }
            match best_j {
                Some(j) => d |= 1 << j,
                None => break,
            }
        }
        if d == 0 || best_cover == 0 {
            break;
        }
        // Close the concept: extend d to every attribute shared by all
        // supporting objects (does not reduce coverage, may increase it).
        let support: Vec<usize> = (0..n).filter(|&i| m.row(i) & d == d).collect();
        let mut closed = (0..cols).fold(0u64, |acc, j| acc | 1 << j);
        for &i in &support {
            closed &= m.row(i);
        }
        debug_assert_eq!(closed & d, d);
        c.set_row(l, closed);
        for &i in &support {
            b.set(i, l, true);
            uncovered[i] &= !closed;
        }
        if uncovered.iter().all(|&u| u == 0) {
            break;
        }
    }
    (b, c)
}

/// Number of currently uncovered 1-cells the attribute set `d` would
/// cover (over its full object support).
fn coverage(m: &BoolMatrix, uncovered: &[u64], d: u64) -> usize {
    let mut total = 0usize;
    for (i, &u) in uncovered.iter().enumerate() {
        if m.row(i) & d == d {
            total += (u & d).count_ones() as usize;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::hamming;

    #[test]
    fn product_never_exceeds_input() {
        let m = BoolMatrix::from_fn(10, 6, |i, j| (i * j) % 4 != 3 && i % 2 == 0);
        for f in 1..=4 {
            let (b, c) = grecond(&m, f);
            let p = b.or_product(&c);
            for i in 0..m.num_rows() {
                assert_eq!(p.row(i) & !m.row(i), 0, "false positive at f={f} row {i}");
            }
        }
    }

    #[test]
    fn exact_cover_when_enough_factors() {
        let m = BoolMatrix::from_rows(4, &[0b0011, 0b1100, 0b1111, 0b0000]);
        let (b, c) = grecond(&m, 4);
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
    }

    #[test]
    fn error_nonincreasing_in_degree() {
        let m = BoolMatrix::from_fn(12, 6, |i, j| (i + 2 * j) % 3 == 0);
        let mut prev = usize::MAX;
        for f in 1..=6 {
            let (b, c) = grecond(&m, f);
            let e = hamming(&b.or_product(&c), &m);
            assert!(e <= prev);
            prev = e;
        }
    }

    #[test]
    fn zero_matrix_stays_zero() {
        let m = BoolMatrix::zeroed(5, 5);
        let (b, c) = grecond(&m, 2);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(c.count_ones(), 0);
    }

    #[test]
    fn identity_needs_full_rank() {
        let m = BoolMatrix::from_fn(4, 4, |i, j| i == j);
        let (b, c) = grecond(&m, 4);
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
        let (b2, c2) = grecond(&m, 2);
        // With only 2 factors at most 2 diagonal cells can be covered
        // (identity has Boolean rank 4).
        assert!(hamming(&b2.or_product(&c2), &m) >= 2);
    }
}
