//! Boolean matrix factorization for approximate logic synthesis.
//!
//! Implements the factorization machinery of the BLASYS paper
//! (DAC 2018): given a Boolean matrix `M` (`n × m`) and a factorization
//! degree `f`, find `B` (`n × f`) and `C` (`f × m`) such that `M ≈ B ∘ C`
//! where `∘` is the Boolean *semi-ring* product (AND/OR) or the GF(2)
//! *field* product (AND/XOR).
//!
//! Three algorithms are provided:
//!
//! * [`asso`](crate::asso::asso) — the ASSO algorithm of Miettinen et
//!   al., the paper's choice, extended with the paper's *weighted QoR*
//!   cost so mismatches on high-significance columns are penalized more
//!   (Section 3.2 of the paper);
//! * [`grecond`](crate::grecon::grecond) — a GreConD-style greedy
//!   concept cover, used as an ablation baseline;
//! * [`factorize_xor`](crate::xor::factorize_xor) — an alternating
//!   local-search heuristic for the GF(2) field variant.
//!
//! # Example
//!
//! ```
//! use blasys_bmf::{BoolMatrix, Factorizer};
//!
//! // A rank-2 Boolean matrix.
//! let m = BoolMatrix::from_rows(4, &[0b0011, 0b1100, 0b1111, 0b0000]);
//! let fac = Factorizer::new().factorize(&m, 2);
//! assert_eq!(fac.error(&m), 0.0); // exactly recoverable at f = 2
//! ```

pub mod asso;
pub mod factorize;
pub mod grecon;
pub mod matrix;
pub mod metrics;
pub mod obs;
pub mod xor;

pub use factorize::{truncated, Algebra, Algorithm, Factorization, Factorizer};
pub use matrix::BoolMatrix;
pub use metrics::{hamming, weighted_error};
pub use obs::FactorizeCounters;
