//! The ASSO Boolean matrix factorization algorithm, with the BLASYS
//! weighted-QoR extension.
//!
//! ASSO (Miettinen et al., *The Discrete Basis Problem* / MDL4BMF)
//! factorizes `M ≈ B ∘ C` under the Boolean semi-ring:
//!
//! 1. build *candidate basis vectors* from the column association
//!    matrix: candidate `i` has a 1 in column `j` iff the confidence
//!    `conf(i ⇒ j) = |col_i ∧ col_j| / |col_i|` is at least a threshold
//!    `τ`;
//! 2. greedily pick `f` (candidate, usage-column) pairs maximizing a
//!    cover function that rewards newly covered 1s (`w⁺`) and penalizes
//!    erroneously covered 0s (`w⁻`).
//!
//! BLASYS modifies the cover function so every cell of column `j` is
//! additionally scaled by a per-column weight — powers of two for
//! numerically interpreted output buses (Section 3.2 of the paper).
//! This module implements both, plus an optional alternating refinement
//! pass (exact per-row usage re-solve, coordinate-descent basis
//! update).

use blasys_par::{in_worker, Parallelism, Workers};

use crate::matrix::BoolMatrix;
use crate::metrics::weighted_error;
use crate::obs::FactorizeCounters;

/// Tuning parameters for [`asso`].
#[derive(Debug, Clone, PartialEq)]
pub struct AssoParams {
    /// Association confidence threshold `τ ∈ (0, 1]`.
    pub threshold: f64,
    /// Per-column cell weights; `None` means uniform (standard ASSO).
    pub weights: Option<Vec<f64>>,
    /// Reward for covering a 1 (`w⁺` in the ASSO literature).
    pub bonus: f64,
    /// Penalty for covering a 0 (`w⁻`).
    pub penalty: f64,
    /// Alternating refinement rounds applied after the greedy phase
    /// (0 reproduces plain ASSO).
    pub refine_rounds: usize,
    /// Also consider the distinct rows of `M` as candidate basis
    /// vectors (a cheap quality extension useful for truth tables).
    pub row_candidates: bool,
}

impl Default for AssoParams {
    fn default() -> AssoParams {
        AssoParams {
            threshold: 1.0,
            weights: None,
            bonus: 1.0,
            penalty: 1.0,
            refine_rounds: 1,
            row_candidates: true,
        }
    }
}

/// Weighted popcount of `bits` under per-column weights.
#[inline]
fn wsum(mut bits: u64, weights: &[f64]) -> f64 {
    let mut s = 0.0;
    while bits != 0 {
        let j = bits.trailing_zeros() as usize;
        bits &= bits - 1;
        s += weights[j];
    }
    s
}

/// Precomputed [`wsum`] lookup for ≤ 16 columns (every truth-table
/// matrix the flow factorizes).
///
/// `table[bits]` equals `wsum(bits, weights)` **bit for bit**: each
/// entry extends the entry without its highest set bit by one more
/// addend, which reproduces the scan loop's ascending-index left fold
/// exactly — swapping the per-call scan for a lookup cannot change any
/// score. Wider matrices fall back to the scan.
pub(crate) struct WsumTable {
    table: Vec<f64>,
}

impl WsumTable {
    pub(crate) fn build(weights: &[f64]) -> Option<WsumTable> {
        if weights.len() > 16 {
            return None;
        }
        let mut table = vec![0.0f64; 1usize << weights.len()];
        for bits in 1..table.len() {
            let h = usize::BITS as usize - 1 - bits.leading_zeros() as usize;
            table[bits] = table[bits ^ (1 << h)] + weights[h];
        }
        Some(WsumTable { table })
    }

    #[inline]
    pub(crate) fn get(&self, bits: u64) -> f64 {
        self.table[bits as usize]
    }
}

/// Run ASSO on `m` with factorization degree `f`.
///
/// Returns `(B, C)` with `B` of shape `n × f` and `C` of shape `f × m`,
/// approximating `m ≈ B ∘ C` under the OR semi-ring. When the greedy
/// phase runs out of useful candidates the remaining basis rows are
/// zero (they do not affect the product).
///
/// # Panics
///
/// Panics if `f == 0` or `m` has zero columns.
pub fn asso(m: &BoolMatrix, f: usize, params: &AssoParams) -> (BoolMatrix, BoolMatrix) {
    asso_on(m, f, params, Workers::Transient(Parallelism::Serial))
}

/// [`asso`] with an explicit execution context for the candidate
/// scoring loop.
///
/// Candidate columns are scored independently per greedy round, so the
/// scan parallelizes over contiguous candidate ranges. The reduction
/// keeps the **first** strictly-best candidate in ascending candidate
/// order — exactly the serial scan's winner — so the factorization is
/// bit-identical at any worker count. Inside a worker of an enclosing
/// parallel region the scan silently runs serial (nested scopes are
/// illegal and pointless).
pub fn asso_on(
    m: &BoolMatrix,
    f: usize,
    params: &AssoParams,
    workers: Workers<'_>,
) -> (BoolMatrix, BoolMatrix) {
    asso_counted(m, f, params, workers, None)
}

pub(crate) fn asso_counted(
    m: &BoolMatrix,
    f: usize,
    params: &AssoParams,
    workers: Workers<'_>,
    counters: Option<&FactorizeCounters>,
) -> (BoolMatrix, BoolMatrix) {
    assert!(f >= 1, "factorization degree must be at least 1");
    let cols = m.num_cols();
    assert!(cols >= 1, "matrix must have at least one column");
    let n = m.num_rows();
    let uniform;
    let weights: &[f64] = match &params.weights {
        Some(w) => {
            assert_eq!(w.len(), cols, "one weight per column");
            w
        }
        None => {
            uniform = vec![1.0; cols];
            &uniform
        }
    };
    let workers = if in_worker() {
        Workers::Transient(Parallelism::Serial)
    } else {
        workers
    };

    let candidates = candidate_basis(m, params);
    let wtab = WsumTable::build(weights);
    // Scratch-free scoring: the old loop allocated a `usage` row vector
    // per candidate and threw all but the winner's away. Scoring is now
    // a pure fold and only the winner's usage is re-derived, once per
    // round.
    let score_of = |cand: u64, covered: &[u64]| -> f64 {
        let mut score = 0.0;
        match &wtab {
            Some(t) => {
                for (i, &cov) in covered.iter().enumerate() {
                    let newly = cand & !cov;
                    let row = m.row(i);
                    let gain =
                        params.bonus * t.get(newly & row) - params.penalty * t.get(newly & !row);
                    if gain > 0.0 {
                        score += gain;
                    }
                }
            }
            None => {
                for (i, &cov) in covered.iter().enumerate() {
                    let newly = cand & !cov;
                    let row = m.row(i);
                    let gain = params.bonus * wsum(newly & row, weights)
                        - params.penalty * wsum(newly & !row, weights);
                    if gain > 0.0 {
                        score += gain;
                    }
                }
            }
        }
        score
    };

    let mut b = BoolMatrix::zeroed(n, f);
    let mut c = BoolMatrix::zeroed(f, cols);
    // Covered cells so far: OR over chosen (usage, basis) pairs.
    let mut covered = vec![0u64; n];

    let tasks = if candidates.len() >= 16 {
        workers.worker_count().min(candidates.len()).max(1)
    } else {
        1
    };
    let chunk = candidates.len().div_ceil(tasks.max(1)).max(1);
    for l in 0..f {
        if let Some(cnt) = counters {
            cnt.candidates_scored.add(candidates.len() as u64);
        }
        // Chunk-local first-best under strict `>`, reduced over chunks
        // in ascending order under strict `>`: equals the serial
        // first-best for any chunking.
        let locals: Vec<Option<(f64, u64)>> = workers.run(tasks, |t| {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(candidates.len());
            let mut best: Option<(f64, u64)> = None;
            for &cand in &candidates[lo..hi.max(lo)] {
                if cand == 0 {
                    continue;
                }
                let score = score_of(cand, &covered);
                if best.as_ref().is_none_or(|(s, _)| score > *s) {
                    best = Some((score, cand));
                }
            }
            best
        });
        let mut best: Option<(f64, u64)> = None;
        for local in locals.into_iter().flatten() {
            if best.as_ref().is_none_or(|(s, _)| local.0 > *s) {
                best = Some(local);
            }
        }
        match best {
            Some((score, cand)) if score > 0.0 => {
                c.set_row(l, cand);
                // Re-derive the winner's usage against the same
                // pre-round cover the scores saw.
                for (i, cov) in covered.iter_mut().enumerate().take(n) {
                    let newly = cand & !*cov;
                    let good = newly & m.row(i);
                    let bad = newly & !m.row(i);
                    let gain =
                        params.bonus * wsum(good, weights) - params.penalty * wsum(bad, weights);
                    if gain > 0.0 {
                        b.set(i, l, true);
                        *cov |= cand;
                    }
                }
            }
            _ => break, // remaining basis rows stay zero
        }
    }

    for _ in 0..params.refine_rounds {
        let improved_b = refine_usage(m, &b, &c, weights);
        b = improved_b;
        refine_basis(m, &mut b, &mut c, params, weights);
    }
    (b, c)
}

/// Build the candidate basis-vector set: association-matrix rows at
/// threshold `τ`, optionally extended with the distinct rows of `M`.
fn candidate_basis(m: &BoolMatrix, params: &AssoParams) -> Vec<u64> {
    let cols = m.num_cols();
    // Column bitsets for pairwise dot products.
    let col_bits: Vec<Vec<u64>> = (0..cols).map(|j| m.column_bits(j)).collect();
    let ones: Vec<usize> = (0..cols).map(|j| m.column_count_ones(j)).collect();
    let mut cands = Vec::with_capacity(cols);
    for i in 0..cols {
        if ones[i] == 0 {
            continue;
        }
        let mut row = 0u64;
        for j in 0..cols {
            let dot: usize = col_bits[i]
                .iter()
                .zip(&col_bits[j])
                .map(|(a, b)| (a & b).count_ones() as usize)
                .sum();
            if dot as f64 >= params.threshold * ones[i] as f64 {
                row |= 1 << j;
            }
        }
        cands.push(row);
    }
    if params.row_candidates {
        let mut rows: Vec<u64> = m.iter_rows().filter(|&r| r != 0).collect();
        rows.sort_unstable();
        rows.dedup();
        cands.extend(rows);
    }
    cands.sort_unstable();
    cands.dedup();
    cands
}

/// Exact per-row usage re-solve: for each row of `M`, choose the subset
/// of basis rows whose OR minimizes the weighted error. Exhaustive over
/// `2^f` subsets when `f ≤ 12`, greedy otherwise.
fn refine_usage(m: &BoolMatrix, b: &BoolMatrix, c: &BoolMatrix, weights: &[f64]) -> BoolMatrix {
    let f = c.num_rows();
    let n = m.num_rows();
    let mut out = BoolMatrix::zeroed(n, f);
    if f <= 12 {
        // DP over subsets: or_of[s] = or_of[s \ lowbit] | basis[lowbit].
        let mut or_of = vec![0u64; 1 << f];
        for s in 1usize..1 << f {
            let low = s.trailing_zeros() as usize;
            or_of[s] = or_of[s & (s - 1)] | c.row(low);
        }
        for i in 0..n {
            let target = m.row(i);
            let mut best_s = 0usize;
            let mut best_e = f64::INFINITY;
            for (s, &or_val) in or_of.iter().enumerate() {
                let e = wsum(or_val ^ target, weights);
                if e < best_e {
                    best_e = e;
                    best_s = s;
                }
            }
            out.set_row(i, best_s as u64);
        }
    } else {
        for i in 0..n {
            let target = m.row(i);
            let mut acc = 0u64;
            let mut chosen = 0u64;
            loop {
                let mut best_l = None;
                let mut best_e = wsum(acc ^ target, weights);
                for l in 0..f {
                    if chosen >> l & 1 == 1 {
                        continue;
                    }
                    let e = wsum((acc | c.row(l)) ^ target, weights);
                    if e < best_e {
                        best_e = e;
                        best_l = Some(l);
                    }
                }
                match best_l {
                    Some(l) => {
                        chosen |= 1 << l;
                        acc |= c.row(l);
                    }
                    None => break,
                }
            }
            out.set_row(i, chosen);
        }
    }
    // `out` rows are packed usage subsets; reinterpret as the B matrix.
    let keep = b.num_cols();
    debug_assert_eq!(keep, f);
    out
}

/// Coordinate-descent basis update: for every basis row `l` and column
/// `j`, re-decide entry `c[l][j]` optimally given everything else.
fn refine_basis(
    m: &BoolMatrix,
    b: &mut BoolMatrix,
    c: &mut BoolMatrix,
    params: &AssoParams,
    weights: &[f64],
) {
    let f = c.num_rows();
    let cols = m.num_cols();
    let n = m.num_rows();
    for l in 0..f {
        // Rows using basis l.
        let users: Vec<usize> = (0..n).filter(|&i| b.get(i, l)).collect();
        if users.is_empty() {
            continue;
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..cols {
            // For each user row, is cell (i,j) covered by another basis?
            let mut gain_on = 0.0;
            for &i in &users {
                let covered_by_other = (0..f).any(|l2| l2 != l && b.get(i, l2) && c.get(l2, j));
                if covered_by_other {
                    continue; // this entry cannot change cell (i, j)
                }
                if m.get(i, j) {
                    gain_on += params.bonus * weights[j];
                } else {
                    gain_on -= params.penalty * weights[j];
                }
            }
            c.set(l, j, gain_on > 0.0);
        }
    }
}

/// Convenience wrapper: run ASSO over a sweep of thresholds and keep
/// the factorization with the lowest weighted error (the paper sweeps
/// the factorization threshold per subcircuit, Section 4).
pub fn asso_sweep(
    m: &BoolMatrix,
    f: usize,
    thresholds: &[f64],
    base: &AssoParams,
) -> (BoolMatrix, BoolMatrix) {
    asso_sweep_on(
        m,
        f,
        thresholds,
        base,
        Workers::Transient(Parallelism::Serial),
    )
}

/// [`asso_sweep`] with an explicit execution context, passed down to
/// each per-threshold [`asso_on`] run. The threshold loop itself stays
/// serial (the per-round candidate scans inside it are the hot part),
/// so the winning factorization is the serial one verbatim.
pub fn asso_sweep_on(
    m: &BoolMatrix,
    f: usize,
    thresholds: &[f64],
    base: &AssoParams,
    workers: Workers<'_>,
) -> (BoolMatrix, BoolMatrix) {
    asso_sweep_counted(m, f, thresholds, base, workers, None)
}

pub(crate) fn asso_sweep_counted(
    m: &BoolMatrix,
    f: usize,
    thresholds: &[f64],
    base: &AssoParams,
    workers: Workers<'_>,
    counters: Option<&FactorizeCounters>,
) -> (BoolMatrix, BoolMatrix) {
    let uniform;
    let weights: &[f64] = match &base.weights {
        Some(w) => w,
        None => {
            uniform = vec![1.0; m.num_cols()];
            &uniform
        }
    };
    let mut best: Option<(f64, BoolMatrix, BoolMatrix)> = None;
    for &t in thresholds {
        let params = AssoParams {
            threshold: t,
            ..base.clone()
        };
        let (b, c) = asso_counted(m, f, &params, workers, counters);
        let err = weighted_error(&b.or_product(&c), m, weights);
        if best.as_ref().is_none_or(|(e, _, _)| err < *e) {
            best = Some((err, b, c));
        }
    }
    let (_, b, c) = best.expect("at least one threshold required");
    (b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{hamming, value_weights};

    fn params() -> AssoParams {
        AssoParams::default()
    }

    #[test]
    fn exact_rank1_matrix_recovered() {
        // Outer product of [1,1,0,1] and [1,0,1].
        let m = BoolMatrix::from_rows(3, &[0b101, 0b101, 0b000, 0b101]);
        let (b, c) = asso(&m, 1, &params());
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
    }

    #[test]
    fn exact_rank2_matrix_recovered() {
        let m = BoolMatrix::from_rows(4, &[0b0011, 0b1100, 0b1111, 0b0000]);
        let (b, c) = asso(&m, 2, &params());
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
    }

    #[test]
    fn error_nonincreasing_in_degree() {
        // A structured 8x5 matrix.
        let m = BoolMatrix::from_fn(8, 5, |i, j| (i * 7 + j * 3) % 4 == 0 || i == j);
        let mut prev = usize::MAX;
        for f in 1..=5 {
            let (b, c) = asso(&m, f, &params());
            let e = hamming(&b.or_product(&c), &m);
            assert!(e <= prev, "degree {f}: error {e} > previous {prev}");
            prev = e;
        }
    }

    #[test]
    fn weighted_prefers_high_columns() {
        // Column 2 (weight 4) should be matched in preference to
        // columns 0/1 when a conflict forces a choice.
        let m = BoolMatrix::from_rows(3, &[0b100, 0b011, 0b100, 0b011]);
        let w = value_weights(3);
        let p = AssoParams {
            weights: Some(w.clone()),
            ..params()
        };
        let (b, c) = asso(&m, 1, &p);
        let approx = b.or_product(&c);
        // Weighted error with f=1 must keep the MSB column correct in
        // at least as many rows as the unweighted run.
        let werr = weighted_error(&approx, &m, &w);
        let (bu, cu) = asso(&m, 1, &params());
        let uerr = weighted_error(&bu.or_product(&cu), &m, &w);
        assert!(
            werr <= uerr,
            "weighted {werr} should not lose to uniform {uerr}"
        );
    }

    #[test]
    fn zero_matrix_factorizes_to_zero() {
        let m = BoolMatrix::zeroed(6, 4);
        let (b, c) = asso(&m, 2, &params());
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
        assert_eq!(b.count_ones() + c.count_ones(), 0);
    }

    #[test]
    fn all_ones_matrix_is_rank1() {
        let m = BoolMatrix::from_fn(5, 5, |_, _| true);
        let (b, c) = asso(&m, 1, &params());
        assert_eq!(hamming(&b.or_product(&c), &m), 0);
    }

    #[test]
    fn sweep_at_least_as_good_as_single_threshold() {
        let m = BoolMatrix::from_fn(16, 6, |i, j| (i ^ j) & 1 == 0 && i % 3 != 2);
        let base = params();
        let (b1, c1) = asso(&m, 2, &base);
        let single = hamming(&b1.or_product(&c1), &m);
        let (bs, cs) = asso_sweep(&m, 2, &[0.3, 0.5, 0.7, 0.9, 1.0], &base);
        let swept = hamming(&bs.or_product(&cs), &m);
        assert!(swept <= single);
    }

    #[test]
    fn shapes_are_correct() {
        let m = BoolMatrix::from_fn(8, 4, |i, j| i + j % 2 == 0);
        let (b, c) = asso(&m, 3, &params());
        assert_eq!(b.num_rows(), 8);
        assert_eq!(b.num_cols(), 3);
        assert_eq!(c.num_rows(), 3);
        assert_eq!(c.num_cols(), 4);
    }

    #[test]
    fn parallel_scan_is_bit_identical() {
        // Several matrix shapes, weighted and uniform, across worker
        // counts: the factorization must match the serial scan exactly.
        let shapes: Vec<BoolMatrix> = vec![
            BoolMatrix::from_fn(24, 6, |i, j| (i * 7 + j * 3) % 4 == 0 || i == j),
            BoolMatrix::from_fn(40, 8, |i, j| (i ^ j) & 3 != 1),
            BoolMatrix::from_fn(64, 10, |i, j| (i * j) % 5 < 2),
        ];
        for m in &shapes {
            for weighted in [false, true] {
                let p = AssoParams {
                    weights: weighted.then(|| value_weights(m.num_cols())),
                    ..AssoParams::default()
                };
                for f in [1, 2, 3] {
                    let serial = asso(m, f, &p);
                    for threads in [2, 4, 7] {
                        let par =
                            asso_on(m, f, &p, Workers::Transient(Parallelism::Threads(threads)));
                        assert_eq!(serial, par, "f={f} threads={threads} weighted={weighted}");
                    }
                }
            }
        }
    }

    #[test]
    fn wsum_table_matches_scan_exactly() {
        let weights = value_weights(11);
        let t = WsumTable::build(&weights).unwrap();
        for bits in 0u64..1 << 11 {
            assert_eq!(
                t.get(bits).to_bits(),
                wsum(bits, &weights).to_bits(),
                "bits {bits:#b}"
            );
        }
        assert!(WsumTable::build(&[1.0; 17]).is_none());
    }

    #[test]
    fn refinement_never_hurts() {
        let m = BoolMatrix::from_fn(12, 5, |i, j| (i * 5 + j) % 3 == 0);
        let raw = AssoParams {
            refine_rounds: 0,
            ..params()
        };
        let refined = AssoParams {
            refine_rounds: 2,
            ..params()
        };
        let (b0, c0) = asso(&m, 2, &raw);
        let (b1, c1) = asso(&m, 2, &refined);
        let e0 = hamming(&b0.or_product(&c0), &m);
        let e1 = hamming(&b1.or_product(&c1), &m);
        assert!(e1 <= e0, "refined {e1} vs raw {e0}");
    }
}
