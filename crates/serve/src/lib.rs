//! `blasys-serve`: the BLASYS flow as a long-running service.
//!
//! The paper's pipeline — decompose into k×m windows, profile each
//! window's factorization ladder once, then explore degree
//! assignments against the cached profiles — is exactly the shape of
//! a query service: the profile is the expensive part, and every
//! error/area question after it is cheap. This crate serves that
//! split over a hand-rolled HTTP/1.1 daemon (std-only, matching the
//! no-registry-deps constraint):
//!
//! * `POST /circuits` ingests a BLIF circuit: lint pre-flight (400
//!   with JSON diagnostics on rejection), then `open` + `profile`
//!   once into a bounded LRU cache keyed by
//!   [`Netlist::content_hash_hex`](blasys_logic::Netlist::content_hash_hex)
//!   — a *functional* content hash, so resubmitting the same circuit
//!   (even after a BLIF round trip that rewrites its gate structure)
//!   is a cache hit that does zero profile work.
//! * `POST /circuits/{hash}/explore` replays one exploration against
//!   the cached session — any metric/threshold/explorer — and
//!   returns the same `FlowReport` JSON an offline `blasys run`
//!   produces, bit-identically. Budget-truncated requests are 200s
//!   with a `stop_reason`, not errors; `"stream": true` upgrades to
//!   chunked ndjson progress events.
//! * `GET /circuits/{hash}`, `GET /metrics`, `GET /healthz`, and
//!   `POST /admin/shutdown` (graceful drain) round out the surface.
//!
//! Admission control (429 past `max_inflight`), a body-size cap
//! (413), and a read timeout (408) protect the daemon; `serve.*`
//! metrics flow through the shared [`blasys_obs::Registry`].
//!
//! ```no_run
//! use blasys_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::new().addr("127.0.0.1:0"))?;
//! eprintln!("listening on http://{}", server.local_addr());
//! server.run()?; // blocks until POST /admin/shutdown drains
//! # std::io::Result::Ok(())
//! ```

use std::time::Duration;

use blasys_core::{Explorer, QorMetric};
use blasys_par::Parallelism;

pub mod cache;
pub mod http;
pub mod json;
mod server;

pub use cache::{CacheEntry, CircuitMeta, SessionCache};
pub use server::Server;

/// Everything a [`Server`] can be tuned with. The flow-side defaults
/// (samples, seed, window limits, metric, threshold, explorer) match
/// the `blasys` CLI defaults, so a service answer and an offline
/// `blasys run` on the same circuit agree bit-for-bit out of the box.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Bound on cached profiled sessions (LRU beyond it; min 1).
    pub cache_capacity: usize,
    /// Max concurrently admitted requests; excess gets 429.
    pub max_inflight: usize,
    /// Request body cap in bytes; larger gets 413.
    pub max_body_bytes: usize,
    /// Socket read timeout; a stalled sender gets 408.
    pub read_timeout: Duration,
    /// Wall budget for the ingest-time profile stage (`None` =
    /// unlimited; exceeding it answers 503).
    pub profile_wall: Option<Duration>,
    /// Server-wide cap on per-request exploration wall budgets
    /// (`None` = requests may run unbudgeted).
    pub explore_wall_cap: Option<Duration>,
    /// Monte-Carlo sample count per session.
    pub samples: usize,
    /// Monte-Carlo seed.
    pub seed: u64,
    /// Decomposition window limits `(k, m)`.
    pub limits: (usize, usize),
    /// Worker parallelism inside the flow stages.
    pub parallelism: Parallelism,
    /// Default metric when an explore request names none.
    pub metric: QorMetric,
    /// Default error threshold.
    pub threshold: f64,
    /// Default search engine.
    pub explorer: Explorer,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            cache_capacity: 8,
            max_inflight: 4,
            max_body_bytes: 4 * 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            profile_wall: None,
            explore_wall_cap: None,
            // CLI defaults (see `blasys run --help`): 10k samples,
            // the fixed default seed, 10×10 windows.
            samples: 10_000,
            seed: 0xB1A5_1234,
            limits: (10, 10),
            parallelism: Parallelism::Serial,
            metric: QorMetric::AvgRelative,
            threshold: 0.05,
            explorer: Explorer::Greedy,
        }
    }
}

impl ServerConfig {
    /// The defaults above.
    pub fn new() -> ServerConfig {
        ServerConfig::default()
    }

    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub fn addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.addr = addr.into();
        self
    }

    /// Bound on cached profiled sessions.
    pub fn cache_capacity(mut self, capacity: usize) -> ServerConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Max concurrently admitted requests.
    pub fn max_inflight(mut self, max_inflight: usize) -> ServerConfig {
        self.max_inflight = max_inflight;
        self
    }

    /// Request body cap in bytes.
    pub fn max_body_bytes(mut self, max_body_bytes: usize) -> ServerConfig {
        self.max_body_bytes = max_body_bytes;
        self
    }

    /// Socket read timeout.
    pub fn read_timeout(mut self, read_timeout: Duration) -> ServerConfig {
        self.read_timeout = read_timeout;
        self
    }

    /// Wall budget for ingest-time profiling.
    pub fn profile_wall(mut self, profile_wall: Duration) -> ServerConfig {
        self.profile_wall = Some(profile_wall);
        self
    }

    /// Server-wide cap on per-request exploration wall budgets.
    pub fn explore_wall_cap(mut self, cap: Duration) -> ServerConfig {
        self.explore_wall_cap = Some(cap);
        self
    }

    /// Monte-Carlo sample count per session.
    pub fn samples(mut self, samples: usize) -> ServerConfig {
        self.samples = samples;
        self
    }

    /// Monte-Carlo seed.
    pub fn seed(mut self, seed: u64) -> ServerConfig {
        self.seed = seed;
        self
    }

    /// Decomposition window limits `(k, m)`.
    pub fn limits(mut self, k: usize, m: usize) -> ServerConfig {
        self.limits = (k, m);
        self
    }

    /// Worker parallelism inside the flow stages.
    pub fn parallelism(mut self, parallelism: Parallelism) -> ServerConfig {
        self.parallelism = parallelism;
        self
    }

    /// Default metric for explore requests.
    pub fn metric(mut self, metric: QorMetric) -> ServerConfig {
        self.metric = metric;
        self
    }

    /// Default error threshold.
    pub fn threshold(mut self, threshold: f64) -> ServerConfig {
        self.threshold = threshold;
        self
    }

    /// Default search engine.
    pub fn explorer(mut self, explorer: Explorer) -> ServerConfig {
        self.explorer = explorer;
        self
    }
}
