//! Minimal HTTP/1.1 framing over any [`Read`]/[`Write`] pair: enough
//! of the protocol for a localhost tool server, hardened against the
//! two classic abuse shapes (slowloris trickle → read timeout → 408,
//! oversized body → cap → 413) and nothing more. Every response closes
//! the connection (`Connection: close`), so there is no keep-alive
//! state machine to get wrong.

use std::io::{self, Read, Write};

/// Cap on the request line + headers, independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string, e.g. `/circuits`.
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// The path split on `/`, empty segments dropped:
    /// `/circuits/ab12/explore` → `["circuits", "ab12", "explore"]`.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Whether the query string contains `flag` as a `key` or
    /// `key=1`/`key=true` pair (the only query syntax the service
    /// uses).
    pub fn query_flag(&self, flag: &str) -> bool {
        self.query.as_deref().is_some_and(|q| {
            q.split('&').any(|kv| {
                kv == flag
                    || kv
                        .strip_prefix(flag)
                        .is_some_and(|rest| matches!(rest, "=1" | "=true"))
            })
        })
    }
}

/// Why a request could not be read. Each variant maps to exactly one
/// status code, decided here so every handler rejects identically.
#[derive(Debug)]
pub enum HttpError {
    /// The peer stalled past the socket read timeout (→ 408).
    Timeout,
    /// Head or declared body beyond the configured cap (→ 413).
    TooLarge,
    /// Anything else unparseable (→ 400).
    Malformed(String),
    /// The connection dropped mid-request; nothing to answer.
    Disconnected,
}

impl HttpError {
    /// The `(status, reason)` pair this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Timeout => (408, "Request Timeout"),
            HttpError::TooLarge => (413, "Payload Too Large"),
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::Disconnected => (400, "Bad Request"),
        }
    }
}

fn io_error(e: io::Error) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::Timeout,
        _ => HttpError::Disconnected,
    }
}

/// Read and parse one request, enforcing `max_body` on the declared
/// `Content-Length` (the body is never buffered past the cap).
pub fn read_request<R: Read>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    // Accumulate until the blank line ending the head.
    let mut buf = Vec::new();
    let head_len = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        let mut chunk = [0u8; 1024];
        let n = reader.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(if buf.is_empty() {
                HttpError::Disconnected
            } else {
                HttpError::Malformed("connection closed mid-header".to_string())
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::Malformed("non-UTF-8 header".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("expected HTTP/1.x".to_string())),
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "chunked request bodies are not supported; send Content-Length".to_string(),
        ));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad Content-Length".to_string()))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge);
    }

    // Body: whatever followed the head in the buffer, then the rest.
    let mut body = buf[head_len + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed(
            "body longer than Content-Length".to_string(),
        ));
    }
    while body.len() < content_length {
        let mut chunk = vec![0u8; (content_length - body.len()).min(64 * 1024)];
        let n = reader.read(&mut chunk).map_err(io_error)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete response with a `Content-Length` body and close
/// semantics. Errors are returned for the caller to ignore (a peer
/// that hung up mid-response is not the server's problem).
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Shorthand for a JSON response.
pub fn write_json(
    writer: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
) -> io::Result<()> {
    write_response(writer, status, reason, "application/json", body.as_bytes())
}

/// A `Transfer-Encoding: chunked` response in progress: one chunk per
/// [`ChunkedWriter::send`], closed by [`ChunkedWriter::finish`].
pub struct ChunkedWriter<W: Write> {
    writer: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Write the response head and switch the connection to chunked
    /// framing.
    pub fn start(
        mut writer: W,
        status: u16,
        reason: &str,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<W>> {
        write!(
            writer,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        writer.flush()?;
        Ok(ChunkedWriter { writer })
    }

    /// Send one chunk (empty data is skipped: a zero-length chunk
    /// would terminate the stream).
    pub fn send(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.writer, "{:x}\r\n", data.len())?;
        self.writer.write_all(data)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.writer.write_all(b"0\r\n\r\n")?;
        self.writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read(raw: &str, max_body: usize) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()), max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = read(
            "POST /circuits?stream=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/circuits");
        assert_eq!(req.segments(), vec!["circuits"]);
        assert!(req.query_flag("stream"));
        assert!(!req.query_flag("str"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn get_without_body() {
        let req = read("GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.query_flag("stream"));
    }

    #[test]
    fn oversized_body_is_too_large() {
        let err = read(
            "POST /circuits HTTP/1.1\r\nContent-Length: 2048\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::TooLarge));
        assert_eq!(err.status().0, 413);
    }

    #[test]
    fn chunked_request_bodies_are_rejected() {
        let err = read(
            "POST /circuits HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)));
    }

    #[test]
    fn garbage_is_malformed() {
        for raw in [
            "NOT-HTTP\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            assert!(read(raw, 1024).is_err(), "should reject {raw:?}");
        }
    }

    #[test]
    fn chunked_writer_frames_correctly() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "OK", "application/x-ndjson").unwrap();
        w.send(b"hello\n").unwrap();
        w.send(b"").unwrap();
        w.send(b"world\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"));
    }
}
