//! The content-addressed session cache: a bounded LRU from
//! [`Netlist::content_hash_hex`](blasys_logic::Netlist::content_hash_hex)
//! keys to profiled [`FlowSession`]s. The expensive profile stage is
//! paid once per *function* (the hash is functional, so structurally
//! different netlists computing the same function share an entry);
//! every later exploration replays against the cached profile,
//! bit-identical to a fresh one-shot flow.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use blasys_core::session::Profiled;
use blasys_core::FlowSession;

/// Immutable facts about a cached circuit, captured at ingest.
#[derive(Debug, Clone)]
pub struct CircuitMeta {
    /// The content hash, as it appears in URLs.
    pub hash: String,
    /// BLIF model name.
    pub circuit: String,
    /// Primary input count.
    pub num_inputs: usize,
    /// Primary output count.
    pub num_outputs: usize,
    /// Gate count of the ingested netlist.
    pub gates: usize,
    /// Number of k×m windows the decomposition produced.
    pub clusters: usize,
    /// Wall time the one-off profile stage took, nanoseconds.
    pub profile_wall_ns: u64,
}

/// One cached circuit: its profiled session plus bookkeeping.
pub struct CacheEntry {
    /// Ingest-time facts.
    pub meta: CircuitMeta,
    /// The profiled session every explore replays against.
    pub session: FlowSession<Profiled>,
    /// Serializes explorations on this session: concurrent requests
    /// for the *same* circuit queue here (distinct circuits explore in
    /// parallel freely).
    pub explore_lock: Mutex<()>,
    /// How many explorations this entry has served.
    pub explores: AtomicU64,
}

impl CacheEntry {
    /// Count one served exploration.
    pub fn record_explore(&self) {
        self.explores.fetch_add(1, Ordering::Relaxed);
    }
}

/// A bounded LRU keyed by content hash. Entries are `Arc`-shared, so
/// eviction never invalidates a request already holding the session;
/// the entry is dropped when its last in-flight user finishes.
pub struct SessionCache {
    capacity: usize,
    /// Most recently used first. Linear scans are fine: the capacity
    /// is a handful of profiled sessions, each worth megabytes.
    entries: Mutex<Vec<(String, Arc<CacheEntry>)>>,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (minimum 1).
    pub fn new(capacity: usize) -> SessionCache {
        SessionCache {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current entry count (never exceeds the capacity).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Look up a hash, refreshing its recency on hit.
    pub fn get(&self, hash: &str) -> Option<Arc<CacheEntry>> {
        let mut entries = self.lock();
        let pos = entries.iter().position(|(k, _)| k == hash)?;
        let entry = entries.remove(pos);
        let found = entry.1.clone();
        entries.insert(0, entry);
        Some(found)
    }

    /// Insert (or refresh) an entry; returns the evicted entry when
    /// the bound forced one out.
    pub fn insert(&self, entry: Arc<CacheEntry>) -> Option<Arc<CacheEntry>> {
        let hash = entry.meta.hash.clone();
        let mut entries = self.lock();
        if let Some(pos) = entries.iter().position(|(k, _)| k == &hash) {
            entries.remove(pos);
        }
        entries.insert(0, (hash, entry));
        if entries.len() > self.capacity {
            entries.pop().map(|(_, e)| e)
        } else {
            None
        }
    }

    /// Hashes currently cached, most recently used first.
    pub fn hashes(&self) -> Vec<String> {
        self.lock().iter().map(|(k, _)| k.clone()).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Arc<CacheEntry>)>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_circuits::adder;
    use blasys_core::FlowConfig;

    fn entry_for(bits: usize) -> Arc<CacheEntry> {
        let nl = adder(bits);
        let cfg = FlowConfig::new().samples(256).seed(7).limits(4, 2);
        let session = FlowSession::open(&nl, cfg)
            .and_then(FlowSession::profile)
            .expect("profile");
        Arc::new(CacheEntry {
            meta: CircuitMeta {
                hash: nl.content_hash_hex(),
                circuit: nl.name().to_string(),
                num_inputs: nl.num_inputs(),
                num_outputs: nl.num_outputs(),
                gates: nl.gate_count(),
                clusters: 0,
                profile_wall_ns: 0,
            },
            session,
            explore_lock: Mutex::new(()),
            explores: AtomicU64::new(0),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = SessionCache::new(2);
        let (a, b, c) = (entry_for(2), entry_for(3), entry_for(4));
        let (ha, hb, hc) = (
            a.meta.hash.clone(),
            b.meta.hash.clone(),
            c.meta.hash.clone(),
        );
        assert!(cache.insert(a).is_none());
        assert!(cache.insert(b).is_none());
        assert_eq!(cache.len(), 2);
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.get(&ha).is_some());
        let evicted = cache.insert(c).expect("over capacity");
        assert_eq!(evicted.meta.hash, hb);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&hb).is_none());
        assert!(cache.get(&ha).is_some());
        assert!(cache.get(&hc).is_some());
        assert_eq!(cache.hashes().len(), 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let cache = SessionCache::new(2);
        let a = entry_for(2);
        let ha = a.meta.hash.clone();
        assert!(cache.insert(a.clone()).is_none());
        assert!(cache.insert(a).is_none());
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&ha).is_some());
    }
}
