//! The daemon: accept loop, admission control, worker pool, routing,
//! and the request handlers that bridge HTTP onto the staged
//! [`FlowSession`] API.
//!
//! Threading model: one accept thread (the caller of [`Server::run`])
//! plus `max_inflight` worker threads sharing an [`mpsc`] channel.
//! Admission is exact — the accept thread counts in-flight requests
//! on the `serve.inflight` gauge and answers 429 inline once the
//! bound is reached, so a worker is always available for an admitted
//! connection. Graceful shutdown (`POST /admin/shutdown`) sets a flag
//! and wakes the accept loop with a loopback connection; queued and
//! in-flight requests drain before [`Server::run`] returns.

use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use blasys_core::report::{
    diagnostics_json, explorer_name, metric_name, parse_explorer, parse_metric, snapshot_json,
    stop_reason_name, FlowReport,
};
use blasys_core::{
    CancelToken, ExploreSpec, FlowConfig, FlowError, FlowObserver, FlowSession, FlowStage, Json,
    SubcircuitProfile, TrajectoryPoint,
};
use blasys_lint::{run_error_lints, LintConfig, LintTarget};
use blasys_logic::blif::parse_blif_doc;
use blasys_obs::{Counter, Gauge, Histogram, Registry};

use crate::cache::{CacheEntry, CircuitMeta, SessionCache};
use crate::http::{read_request, write_json, ChunkedWriter, HttpError, Request};
use crate::json::{self, JsonExt};
use crate::ServerConfig;

/// The `serve.*` instruments, created once at bind time so `GET
/// /metrics` shows every counter from the first request on.
struct ServeMetrics {
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    inflight: Arc<Gauge>,
    request_wall: Arc<Histogram>,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> ServeMetrics {
        // Decade buckets from 1µs to 1000s, in nanoseconds.
        const BOUNDS: [u64; 9] = [
            1_000,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
            1_000_000_000,
            10_000_000_000,
            100_000_000_000,
        ];
        ServeMetrics {
            requests: registry.counter("serve.requests"),
            rejected: registry.counter("serve.rejected"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_evictions: registry.counter("serve.cache.evictions"),
            inflight: registry.gauge("serve.inflight"),
            request_wall: registry.histogram("serve.request.wall_ns", &BOUNDS),
        }
    }
}

/// Everything the workers share.
struct Shared {
    cfg: ServerConfig,
    registry: Arc<Registry>,
    cache: Arc<SessionCache>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
    metrics: ServeMetrics,
}

/// A bound but not yet running service. [`Server::run`] consumes it
/// and blocks until graceful shutdown.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address (use port 0 for an ephemeral port)
    /// and set up the cache and metrics. No requests are served until
    /// [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(Registry::new());
        let metrics = ServeMetrics::register(&registry);
        let cache = Arc::new(SessionCache::new(cfg.cache_capacity));
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                registry,
                cache,
                shutdown: Arc::new(AtomicBool::new(false)),
                addr,
                metrics,
            }),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The metrics registry backing `GET /metrics` — clone it before
    /// [`Server::run`] to inspect counters after shutdown.
    pub fn registry(&self) -> Arc<Registry> {
        self.shared.registry.clone()
    }

    /// Serve until a graceful shutdown drains the last request.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        let max_inflight = shared.cfg.max_inflight.max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(max_inflight);
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..max_inflight)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
            })
            .collect::<std::io::Result<_>>()?;

        for conn in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let conn = match conn {
                Ok(c) => c,
                Err(_) => continue,
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Exact admission: the gauge counts admitted-but-unfinished
            // requests; at the bound, reject inline so no connection
            // ever waits behind a long exploration.
            if shared.metrics.inflight.get() >= max_inflight as i64 {
                shared.metrics.rejected.add(1);
                let mut conn = conn;
                let _ = conn.set_write_timeout(Some(Duration::from_secs(5)));
                let _ = write_json(
                    &mut conn,
                    429,
                    "Too Many Requests",
                    &Json::obj([
                        ("error", Json::str("overloaded")),
                        ("max_inflight", Json::UInt(max_inflight as u64)),
                    ])
                    .to_string(),
                );
                continue;
            }
            shared.metrics.inflight.add(1);
            if tx.send(conn).is_err() {
                break;
            }
        }
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Take the lock only to receive: handling happens unlocked so
        // the other workers keep draining the queue.
        let conn = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match conn {
            Ok(conn) => {
                handle_connection(shared, conn);
                shared.metrics.inflight.add(-1);
            }
            Err(_) => break, // accept loop gone and queue drained
        }
    }
}

fn handle_connection(shared: &Shared, mut conn: TcpStream) {
    let t0 = Instant::now();
    let _ = conn.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = conn.set_write_timeout(Some(Duration::from_secs(30)));
    let _ = conn.set_nodelay(true);
    shared.metrics.requests.add(1);
    match read_request(&mut conn, shared.cfg.max_body_bytes) {
        Ok(req) => route(shared, &req, &mut conn),
        Err(HttpError::Disconnected) => {}
        Err(e) => {
            let (status, reason) = e.status();
            let message = match e {
                HttpError::Timeout => "request read timed out".to_string(),
                HttpError::TooLarge => "request larger than the configured cap".to_string(),
                HttpError::Malformed(m) => m,
                HttpError::Disconnected => unreachable!("handled above"),
            };
            let _ = write_json(
                &mut conn,
                status,
                reason,
                &Json::obj([
                    (
                        "error",
                        Json::str(reason.to_ascii_lowercase().replace(' ', "-")),
                    ),
                    ("message", Json::str(message)),
                ])
                .to_string(),
            );
        }
    }
    shared
        .metrics
        .request_wall
        .observe(t0.elapsed().as_nanos() as u64);
}

fn route(shared: &Shared, req: &Request, conn: &mut TcpStream) {
    let segments = req.segments();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            let body = Json::obj([
                ("status", Json::str("ok")),
                ("cached_circuits", Json::UInt(shared.cache.len() as u64)),
            ]);
            let _ = write_json(conn, 200, "OK", &body.to_string());
        }
        ("GET", ["metrics"]) => {
            let body = snapshot_json(&shared.registry.snapshot());
            let _ = write_json(conn, 200, "OK", &body.pretty());
        }
        ("POST", ["admin", "shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            wake_accept_loop(shared.addr);
            let _ = write_json(
                conn,
                200,
                "OK",
                &Json::obj([("status", Json::str("draining"))]).to_string(),
            );
        }
        ("POST", ["circuits"]) => handle_ingest(shared, req, conn),
        ("GET", ["circuits", hash]) => handle_status(shared, hash, conn),
        ("POST", ["circuits", hash, "explore"]) => handle_explore(shared, req, hash, conn),
        ("GET" | "POST", ["healthz" | "metrics" | "circuits" | "admin", ..]) => {
            let _ = write_json(
                conn,
                405,
                "Method Not Allowed",
                &Json::obj([("error", Json::str("method-not-allowed"))]).to_string(),
            );
        }
        _ => {
            let _ = write_json(
                conn,
                404,
                "Not Found",
                &Json::obj([("error", Json::str("not-found"))]).to_string(),
            );
        }
    }
}

/// The accept loop blocks in `accept()`; after setting the shutdown
/// flag, poke it with a throwaway loopback connection so it notices.
fn wake_accept_loop(addr: SocketAddr) {
    let ip = match addr.ip() {
        ip if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        ip => ip,
    };
    let _ = TcpStream::connect_timeout(&SocketAddr::new(ip, addr.port()), Duration::from_secs(1));
}

/// The JSON body describing one cached circuit.
fn circuit_json(meta: &CircuitMeta, cached: bool, explores: u64) -> Json {
    Json::obj([
        ("hash", Json::str(meta.hash.clone())),
        ("cached", Json::Bool(cached)),
        ("circuit", Json::str(meta.circuit.clone())),
        ("num_inputs", Json::UInt(meta.num_inputs as u64)),
        ("num_outputs", Json::UInt(meta.num_outputs as u64)),
        ("gates", Json::UInt(meta.gates as u64)),
        ("clusters", Json::UInt(meta.clusters as u64)),
        ("profile_wall_ns", Json::UInt(meta.profile_wall_ns)),
        ("explores", Json::UInt(explores)),
    ])
}

fn bad_request(conn: &mut TcpStream, message: impl Into<String>) {
    let _ = write_json(
        conn,
        400,
        "Bad Request",
        &Json::obj([
            ("error", Json::str("bad-request")),
            ("message", Json::str(message.into())),
        ])
        .to_string(),
    );
}

fn flow_error_response(conn: &mut TcpStream, err: &FlowError) {
    match err {
        FlowError::InvalidNetlist(diags) => {
            let _ = write_json(
                conn,
                400,
                "Bad Request",
                &Json::obj([
                    ("error", Json::str("invalid-netlist")),
                    ("diagnostics", diagnostics_json(diags)),
                ])
                .to_string(),
            );
        }
        FlowError::BudgetExhausted => {
            let _ = write_json(
                conn,
                503,
                "Service Unavailable",
                &Json::obj([
                    ("error", Json::str("profile-budget-exhausted")),
                    (
                        "message",
                        Json::str("profiling exceeded the server's wall budget"),
                    ),
                ])
                .to_string(),
            );
        }
        other => bad_request(conn, format!("{other}")),
    }
}

/// `POST /circuits` — lint pre-flight, content hash, then profile
/// into the cache (or answer from it). `?stream=1` upgrades to a
/// chunked ndjson response with decompose/profile progress events
/// before the final summary.
fn handle_ingest(shared: &Shared, req: &Request, conn: &mut TcpStream) {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) if !t.trim().is_empty() => t,
        Ok(_) => return bad_request(conn, "empty body; POST the BLIF source"),
        Err(_) => return bad_request(conn, "body is not UTF-8 BLIF text"),
    };
    // The same pre-flight the CLI runs: syntax, then error-level
    // lints over the *document* (carrying source locations), then
    // netlist construction.
    let doc = match parse_blif_doc(text) {
        Ok(doc) => doc,
        Err(e) => return bad_request(conn, format!("BLIF parse error: {e}")),
    };
    let diags = run_error_lints(&LintTarget::new().with_doc(&doc), &LintConfig::default());
    if !diags.is_empty() {
        return flow_error_response(conn, &FlowError::InvalidNetlist(diags));
    }
    let nl = match doc.build() {
        Ok(nl) => nl,
        Err(e) => return bad_request(conn, format!("BLIF build error: {e}")),
    };
    let hash = nl.content_hash_hex();

    if let Some(entry) = shared.cache.get(&hash) {
        shared.metrics.cache_hits.add(1);
        let body = circuit_json(&entry.meta, true, entry.explores.load(Ordering::Relaxed));
        let _ = write_json(conn, 200, "OK", &body.to_string());
        return;
    }
    shared.metrics.cache_misses.add(1);

    let mut flow_cfg = FlowConfig::new()
        .samples(shared.cfg.samples)
        .seed(shared.cfg.seed)
        .limits(shared.cfg.limits.0, shared.cfg.limits.1)
        .parallelism(shared.cfg.parallelism)
        .metrics(shared.registry.clone());
    if let Some(wall) = shared.cfg.profile_wall {
        flow_cfg = flow_cfg.wall_budget(wall);
    }

    // Streaming: attach a disarmable observer bridge so decompose /
    // profile progress flows down the chunked response while the
    // session is being built. The bridge stays attached to the cached
    // session but is disarmed before the handler returns, so later
    // explorations see a no-op session observer.
    let bridge = if req.query_flag("stream") {
        match conn
            .try_clone()
            .and_then(|c| ChunkedWriter::start(c, 201, "Created", "application/x-ndjson"))
        {
            Ok(writer) => {
                let bridge = Arc::new(StreamBridge::new(writer, None));
                flow_cfg = flow_cfg.observer_shared(bridge.clone());
                Some(bridge)
            }
            Err(_) => return,
        }
    } else {
        None
    };

    let t0 = Instant::now();
    let session = FlowSession::open(&nl, flow_cfg).and_then(FlowSession::profile);
    let session = match session {
        Ok(s) => s,
        Err(e) => {
            if let Some(bridge) = &bridge {
                bridge.error(&format!("{e}"));
                return;
            }
            return flow_error_response(conn, &e);
        }
    };
    let profile_wall_ns = t0.elapsed().as_nanos() as u64;

    let entry = Arc::new(CacheEntry {
        meta: CircuitMeta {
            hash: hash.clone(),
            circuit: nl.name().to_string(),
            num_inputs: nl.num_inputs(),
            num_outputs: nl.num_outputs(),
            gates: nl.gate_count(),
            clusters: session.clusters(),
            profile_wall_ns,
        },
        session,
        explore_lock: Mutex::new(()),
        explores: std::sync::atomic::AtomicU64::new(0),
    });
    if shared.cache.insert(entry.clone()).is_some() {
        shared.metrics.cache_evictions.add(1);
    }

    let body = circuit_json(&entry.meta, false, 0);
    match bridge {
        Some(bridge) => bridge.done(body),
        None => {
            let _ = write_json(conn, 201, "Created", &body.to_string());
        }
    }
}

/// `GET /circuits/{hash}` — cache status for one hash.
fn handle_status(shared: &Shared, hash: &str, conn: &mut TcpStream) {
    match shared.cache.get(hash) {
        Some(entry) => {
            let body = circuit_json(&entry.meta, true, entry.explores.load(Ordering::Relaxed));
            let _ = write_json(conn, 200, "OK", &body.to_string());
        }
        None => {
            let _ = write_json(
                conn,
                404,
                "Not Found",
                &Json::obj([
                    ("error", Json::str("unknown-circuit")),
                    ("hash", Json::str(hash.to_string())),
                ])
                .to_string(),
            );
        }
    }
}

/// The parsed body of an explore request.
struct ExploreRequest {
    spec: ExploreSpec,
    metric: blasys_core::QorMetric,
    threshold: f64,
    explorer: blasys_core::Explorer,
    stream: bool,
}

fn parse_explore_request(shared: &Shared, body: &[u8]) -> Result<ExploreRequest, String> {
    let mut metric = shared.cfg.metric;
    let mut threshold = shared.cfg.threshold;
    let mut explorer = shared.cfg.explorer;
    let mut exhaust = false;
    let mut prune = true;
    let mut max_probes = None;
    let mut max_wall_ms = None;
    let mut stream = false;

    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    if !text.trim().is_empty() {
        let parsed = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
        let fields = match parsed {
            Json::Obj(fields) => fields,
            _ => return Err("body must be a JSON object".to_string()),
        };
        for (key, value) in &fields {
            match key.as_str() {
                "metric" => {
                    let name = value.as_str().ok_or("`metric` must be a string")?;
                    metric =
                        parse_metric(name).ok_or_else(|| format!("unknown metric `{name}`"))?;
                }
                "threshold" => {
                    threshold = value.as_f64().ok_or("`threshold` must be a number")?;
                    if threshold.is_nan() || threshold < 0.0 {
                        return Err("`threshold` must be >= 0".to_string());
                    }
                }
                "exhaust" => exhaust = value.as_bool().ok_or("`exhaust` must be a boolean")?,
                "explorer" => {
                    let name = value.as_str().ok_or("`explorer` must be a string")?;
                    explorer =
                        parse_explorer(name).ok_or_else(|| format!("unknown explorer `{name}`"))?;
                }
                "prune" => prune = value.as_bool().ok_or("`prune` must be a boolean")?,
                "max_probes" => {
                    max_probes = Some(value.as_u64().ok_or("`max_probes` must be an integer")?);
                }
                "max_wall_ms" => {
                    max_wall_ms = Some(value.as_u64().ok_or("`max_wall_ms` must be an integer")?);
                }
                "stream" => stream = value.as_bool().ok_or("`stream` must be a boolean")?,
                other => return Err(format!("unknown field `{other}`")),
            }
        }
    }

    let mut spec = ExploreSpec::new()
        .metric(metric)
        .explorer(explorer)
        .prune(prune);
    spec = if exhaust {
        spec.exhaust()
    } else {
        spec.threshold(threshold)
    };
    if let Some(probes) = max_probes {
        spec = spec.probe_budget(probes);
    }
    // The request wall budget, clamped by the server-wide cap.
    let wall = match (
        max_wall_ms.map(Duration::from_millis),
        shared.cfg.explore_wall_cap,
    ) {
        (Some(req), Some(cap)) => Some(req.min(cap)),
        (Some(req), None) => Some(req),
        (None, cap) => cap,
    };
    if let Some(wall) = wall {
        spec = spec.wall_budget(wall);
    }
    Ok(ExploreRequest {
        spec,
        metric,
        threshold,
        explorer,
        stream,
    })
}

/// `POST /circuits/{hash}/explore` — replay one exploration against
/// the cached profile. Budget- or cancel-truncated runs are 200s with
/// the truncation named in `stop_reason`, never errors.
fn handle_explore(shared: &Shared, req: &Request, hash: &str, conn: &mut TcpStream) {
    let entry = match shared.cache.get(hash) {
        Some(entry) => entry,
        None => {
            let _ = write_json(
                conn,
                404,
                "Not Found",
                &Json::obj([
                    ("error", Json::str("unknown-circuit")),
                    ("hash", Json::str(hash.to_string())),
                ])
                .to_string(),
            );
            return;
        }
    };
    let parsed = match parse_explore_request(shared, &req.body) {
        Ok(p) => p,
        Err(message) => return bad_request(conn, message),
    };
    let stream = parsed.stream || req.query_flag("stream");

    // A client that disconnects mid-stream cancels its exploration.
    let cancel = CancelToken::new();
    let spec = parsed.spec.cancel(cancel.clone());

    let bridge = if stream {
        match conn
            .try_clone()
            .and_then(|c| ChunkedWriter::start(c, 200, "OK", "application/x-ndjson"))
        {
            Ok(writer) => Some(Arc::new(StreamBridge::new(writer, Some(cancel)))),
            Err(_) => return,
        }
    } else {
        None
    };

    let exploration = {
        // One exploration at a time per cached session: its worker
        // pool and pristine-evaluator cache are session-level.
        let _guard = entry.explore_lock.lock().unwrap_or_else(|e| e.into_inner());
        let observer = bridge.as_ref().map(|b| b.as_ref() as &dyn FlowObserver);
        entry.session.explore_with(&spec, observer)
    };
    entry.record_explore();

    let result = entry.session.result(&exploration);
    // Step selection mirrors `blasys run`: the deepest step whose
    // error stays under the threshold, falling back to the exact
    // design.
    let step = result
        .best_step_under(parsed.metric, parsed.threshold)
        .unwrap_or(0);
    let synthesized = result.synthesize_step(step);
    let report = FlowReport::from_result_with_netlist(&result, step, &synthesized)
        .with_explorer(parsed.explorer);

    let envelope = Json::obj([
        ("hash", Json::str(hash.to_string())),
        (
            "stop_reason",
            Json::str(stop_reason_name(exploration.stop_reason())),
        ),
        ("probes", Json::UInt(exploration.probes())),
        (
            "trajectory_points",
            Json::UInt(exploration.trajectory().len() as u64),
        ),
        ("metric", Json::str(metric_name(parsed.metric))),
        ("explorer", Json::str(explorer_name(&parsed.explorer))),
        ("step", Json::UInt(step as u64)),
        ("report", report.to_json()),
    ]);
    match bridge {
        Some(bridge) => bridge.done(envelope),
        None => {
            let _ = write_json(conn, 200, "OK", &envelope.to_string());
        }
    }
}

/// A [`FlowObserver`] that forwards flow progress down a chunked
/// HTTP response as ndjson events, one object per line:
/// `{"event": "stage" | "window" | "step" | "error" | "done", ...}`.
///
/// The sink is disarmable: the first write failure (client hung up)
/// drops it, trips the request's [`CancelToken`] when one is
/// attached, and every later callback becomes a no-op. Ingest leaves
/// the disarmed bridge attached to the cached session, where it
/// stays inert.
struct StreamBridge {
    sink: Mutex<Option<ChunkedWriter<TcpStream>>>,
    cancel: Option<CancelToken>,
}

impl StreamBridge {
    fn new(writer: ChunkedWriter<TcpStream>, cancel: Option<CancelToken>) -> StreamBridge {
        StreamBridge {
            sink: Mutex::new(Some(writer)),
            cancel,
        }
    }

    fn emit(&self, event: Json) {
        let mut guard = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = guard.as_mut() {
            let mut line = event.to_string();
            line.push('\n');
            if writer.send(line.as_bytes()).is_err() {
                *guard = None;
                if let Some(cancel) = &self.cancel {
                    cancel.cancel();
                }
            }
        }
    }

    /// Final event: emit, then close the chunked stream.
    fn done(&self, mut body: Json) {
        if let Json::Obj(fields) = &mut body {
            fields.insert(0, ("event".to_string(), Json::str("done")));
        }
        self.emit(body);
        let mut guard = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = guard.take() {
            let _ = writer.finish();
        }
    }

    /// Terminal failure on a streaming response: the head already
    /// went out, so the error travels as the last event.
    fn error(&self, message: &str) {
        self.emit(Json::obj([
            ("event", Json::str("error")),
            ("message", Json::str(message.to_string())),
        ]));
        let mut guard = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(writer) = guard.take() {
            let _ = writer.finish();
        }
    }
}

fn stage_name(stage: FlowStage) -> &'static str {
    match stage {
        FlowStage::Decompose => "decompose",
        FlowStage::Profile => "profile",
        FlowStage::Explore => "explore",
    }
}

impl FlowObserver for StreamBridge {
    fn on_stage_start(&self, stage: FlowStage) {
        self.emit(Json::obj([
            ("event", Json::str("stage")),
            ("stage", Json::str(stage_name(stage))),
            ("phase", Json::str("start")),
        ]));
    }

    fn on_stage_end(&self, stage: FlowStage) {
        self.emit(Json::obj([
            ("event", Json::str("stage")),
            ("stage", Json::str(stage_name(stage))),
            ("phase", Json::str("end")),
        ]));
    }

    fn on_window_profiled(&self, profile: &SubcircuitProfile, total_windows: usize) {
        self.emit(Json::obj([
            ("event", Json::str("window")),
            ("cluster", Json::UInt(profile.cluster as u64)),
            ("total", Json::UInt(total_windows as u64)),
        ]));
    }

    fn on_trajectory_point(&self, point: &TrajectoryPoint) {
        self.emit(Json::obj([
            ("event", Json::str("step")),
            ("step", Json::UInt(point.step as u64)),
            (
                "changed_cluster",
                match point.changed_cluster {
                    Some(c) => Json::UInt(c as u64),
                    None => Json::Null,
                },
            ),
            ("model_area_um2", Json::Num(point.model_area_um2)),
        ]));
    }
}
