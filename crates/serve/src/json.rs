//! A strict JSON parser for request bodies, producing the same
//! [`Json`] value model the reports are emitted with — so a parsed
//! document re-renders through [`Json`]'s `Display` and a response can
//! be compared bit-for-bit against an offline `blasys run --report`.
//!
//! The grammar is RFC 8259 minus nothing the service needs: all value
//! kinds, string escapes including `\uXXXX` (with surrogate pairs),
//! and exact `u64` integers (kept as [`Json::UInt`], matching the
//! emitter, so counters survive a round trip without float drift).
//! Trailing garbage after the top-level value is an error.

use blasys_core::Json;

/// Parse one complete JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// A parse failure: what went wrong and the byte offset it happened
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Nesting cap: deep enough for any report, shallow enough that a
/// hostile body cannot blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // scalar boundaries are trustworthy).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = &self.bytes[start..self.pos];
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| ParseError {
                        message: "invalid UTF-8".to_string(),
                        offset: start,
                    })?);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if integral && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Helpers for picking fields out of a parsed request body.
pub trait JsonExt {
    /// The value of `key` in an object (`None` otherwise).
    fn get(&self, key: &str) -> Option<&Json>;
    /// String payload, if this is a string.
    fn as_str(&self) -> Option<&str>;
    /// Unsigned integer payload, if exactly representable.
    fn as_u64(&self) -> Option<u64>;
    /// Numeric payload ([`Json::UInt`] or [`Json::Num`]).
    fn as_f64(&self) -> Option<f64>;
    /// Boolean payload.
    fn as_bool(&self) -> Option<bool>;
}

impl JsonExt for Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::UInt(42));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(parse("1.5e2").unwrap(), Json::Num(150.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::str("a\nb"));
        assert_eq!(parse(r#""é""#).unwrap(), Json::str("é"));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn parses_structures_preserving_order() {
        let j = parse(r#"{"b": [1, {"x": null}], "a": "y"}"#).unwrap();
        match &j {
            Json::Obj(fields) => {
                assert_eq!(fields[0].0, "b");
                assert_eq!(fields[1].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(j.get("a").and_then(Json::as_str), Some("y"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01",
            "1.",
            "\"ab",
            r#""\q""#,
            "{\"a\" 1}",
            "[1] x",
            r#""\ud83d""#,
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_the_emitter_rendering() {
        // Emit with the report writer, parse, re-emit: byte-identical.
        let j = Json::obj([
            ("s", Json::str("a\"b\\c\nd")),
            ("n", Json::Num(1.5)),
            ("u", Json::UInt(u64::MAX)),
            ("arr", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("o", Json::obj([("k", Json::Num(0.123456789))])),
        ]);
        let text = j.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.to_string(), text);
        let pretty = j.pretty();
        assert_eq!(parse(&pretty).unwrap().to_string(), text);
    }
}
