//! Flow-invariant verifiers, `V0001` … `V0003`.
//!
//! Where the lint passes in [`crate::passes`] judge *quality*, these
//! verifiers judge *well-formedness*: each checks an invariant the
//! approximation flow assumes at a stage boundary and returns every
//! violation as a [`Diagnostic`]. `blasys-core` asserts them between
//! stages in debug builds (and in release when `verify_ir` is set),
//! and runs [`verify_netlist`] on every netlist admitted into a flow
//! session.

use blasys_decomp::Partition;
use blasys_logic::{GateKind, Netlist};

use crate::{Diagnostic, Severity};

/// Lint id for netlist-invariant violations.
pub const NETLIST_INVARIANT: &str = "V0001-netlist-invariant";
/// Lint id for partition-invariant violations.
pub const PARTITION_INVARIANT: &str = "V0002-partition-invariant";
/// Lint id for interface-preservation violations.
pub const INTERFACE: &str = "V0003-interface";

fn finish(diags: Vec<Diagnostic>) -> Result<(), Vec<Diagnostic>> {
    if diags.is_empty() {
        Ok(())
    } else {
        Err(diags)
    }
}

/// Verify the core [`Netlist`] invariants: topological storage (every
/// fanin strictly earlier than its user), in-range output references,
/// unique output names, and `Input`-kind nodes exactly where the PI
/// list points.
///
/// # Errors
///
/// Returns one `V0001-netlist-invariant` diagnostic per violation.
pub fn verify_netlist(nl: &Netlist) -> Result<(), Vec<Diagnostic>> {
    let mut diags = Vec::new();
    if let Err(e) = nl.validate() {
        diags.push(Diagnostic::new(
            NETLIST_INVARIANT,
            Severity::Error,
            format!("netlist `{}` violates storage invariants: {e}", nl.name()),
        ));
    }
    for (idx, &pi) in nl.inputs().iter().enumerate() {
        if pi.index() >= nl.len() || nl.node(pi).kind() != GateKind::Input {
            diags.push(
                Diagnostic::new(
                    NETLIST_INVARIANT,
                    Severity::Error,
                    format!(
                        "primary input {idx} (`{}`) does not point at an Input node",
                        nl.input_name(idx)
                    ),
                )
                .with_nodes(vec![pi.index()]),
            );
        }
    }
    let input_count = nl
        .iter()
        .filter(|(_, n)| n.kind() == GateKind::Input)
        .count();
    if input_count != nl.num_inputs() {
        diags.push(Diagnostic::new(
            NETLIST_INVARIANT,
            Severity::Error,
            format!(
                "{input_count} Input-kind nodes but {} registered primary inputs",
                nl.num_inputs()
            ),
        ));
    }
    finish(diags)
}

/// Verify that `partition` is a well-formed decomposition of `nl`:
/// every gate covered exactly once by disjoint windows, boundaries
/// within the `(k, m)` limits, and the cluster sequence topologically
/// ordered.
///
/// # Errors
///
/// Returns `V0002-partition-invariant` diagnostics on violation.
pub fn verify_partition(nl: &Netlist, partition: &Partition) -> Result<(), Vec<Diagnostic>> {
    let mut diags = Vec::new();
    if let Err(e) = partition.validate(nl) {
        diags.push(Diagnostic::new(
            PARTITION_INVARIANT,
            Severity::Error,
            format!(
                "partition of `{}` ({} clusters) is inconsistent: {e}",
                nl.name(),
                partition.len()
            ),
        ));
    }
    let covered: usize = partition.clusters().iter().map(|c| c.len()).sum();
    let gates = nl.gate_count();
    if covered != gates {
        diags.push(Diagnostic::new(
            PARTITION_INVARIANT,
            Severity::Error,
            format!("partition covers {covered} gates, netlist has {gates}"),
        ));
    }
    finish(diags)
}

/// Verify that an approximated netlist preserves the original's
/// external interface: identical primary-input and primary-output
/// names, in order, and internally valid storage.
///
/// # Errors
///
/// Returns `V0003-interface` diagnostics on violation.
pub fn verify_interface(original: &Netlist, approx: &Netlist) -> Result<(), Vec<Diagnostic>> {
    let mut diags = Vec::new();
    if let Err(mut e) = verify_netlist(approx) {
        diags.append(&mut e);
    }
    if original.num_inputs() != approx.num_inputs() {
        diags.push(Diagnostic::new(
            INTERFACE,
            Severity::Error,
            format!(
                "approximation has {} primary inputs, original has {}",
                approx.num_inputs(),
                original.num_inputs()
            ),
        ));
    } else {
        for i in 0..original.num_inputs() {
            if original.input_name(i) != approx.input_name(i) {
                diags.push(
                    Diagnostic::new(
                        INTERFACE,
                        Severity::Error,
                        format!(
                            "primary input {i} renamed: `{}` became `{}`",
                            original.input_name(i),
                            approx.input_name(i)
                        ),
                    )
                    .with_signals(vec![original.input_name(i).to_string()]),
                );
            }
        }
    }
    if original.num_outputs() != approx.num_outputs() {
        diags.push(Diagnostic::new(
            INTERFACE,
            Severity::Error,
            format!(
                "approximation has {} primary outputs, original has {}",
                approx.num_outputs(),
                original.num_outputs()
            ),
        ));
    } else {
        for (o, a) in original.outputs().iter().zip(approx.outputs()) {
            if o.name() != a.name() {
                diags.push(
                    Diagnostic::new(
                        INTERFACE,
                        Severity::Error,
                        format!(
                            "primary output renamed: `{}` became `{}`",
                            o.name(),
                            a.name()
                        ),
                    )
                    .with_signals(vec![o.name().to_string()]),
                );
            }
        }
    }
    finish(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_decomp::{decompose, DecompConfig};

    fn fixture() -> Netlist {
        let mut nl = Netlist::new("fix");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.xor(a, b);
        let h = nl.and(g, a);
        nl.mark_output("g", g);
        nl.mark_output("h", h);
        nl
    }

    #[test]
    fn healthy_netlist_and_partition_verify() {
        let nl = fixture();
        verify_netlist(&nl).expect("netlist ok");
        let p = decompose(&nl, &DecompConfig::default());
        verify_partition(&nl, &p).expect("partition ok");
    }

    #[test]
    fn interface_preserved_by_identity() {
        let nl = fixture();
        verify_interface(&nl, &nl).expect("identity preserves interface");
    }

    #[test]
    fn interface_rename_is_reported() {
        let nl = fixture();
        let mut renamed = Netlist::new("fix");
        let a = renamed.add_input("a");
        let b = renamed.add_input("b");
        let g = renamed.xor(a, b);
        let h = renamed.and(g, a);
        renamed.mark_output("g", g);
        renamed.mark_output("hh", h);
        let diags = verify_interface(&nl, &renamed).unwrap_err();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].lint, INTERFACE);
        assert!(diags[0].message.contains("`h` became `hh`"), "{diags:?}");
    }

    #[test]
    fn interface_arity_change_is_reported() {
        let nl = fixture();
        let mut narrowed = Netlist::new("fix");
        let a = narrowed.add_input("a");
        narrowed.mark_output("g", a);
        let diags = verify_interface(&nl, &narrowed).unwrap_err();
        assert!(diags.iter().any(|d| d.lint == INTERFACE), "{diags:?}");
    }

    #[test]
    fn partition_gate_count_mismatch_is_reported() {
        let nl = fixture();
        let p = decompose(&nl, &DecompConfig::default());
        let mut bigger = fixture();
        let a = bigger.inputs()[0];
        let b = bigger.inputs()[1];
        let extra = bigger.or(a, b);
        bigger.mark_output("extra", extra);
        let diags = verify_partition(&bigger, &p).unwrap_err();
        assert!(
            diags.iter().any(|d| d.lint == PARTITION_INVARIANT),
            "{diags:?}"
        );
    }
}
