//! The lint passes, `L0001` … `L0010`.
//!
//! Document-level passes (`L0001`–`L0007`) analyze the structural
//! [`BlifDoc`] form, where defects a built [`Netlist`] cannot
//! represent (cycles, undriven or multiply-driven nets) are still
//! visible and carry source lines. Liveness passes (`L0005`, `L0006`)
//! fall back to the netlist surface when no document is attached.
//! Redundancy (`L0008`) and cluster passes (`L0009`, `L0010`) run on
//! the built netlist / partition.

use std::collections::{HashMap, HashSet};

use blasys_logic::blif::{BlifDoc, NamesBlock};
use blasys_logic::{GateKind, Netlist, NodeId, Simulator, TruthTable};
use blasys_synth::estimate::{estimate, EstimateConfig};
use blasys_synth::CellLibrary;

use crate::{Diagnostic, Lint, LintTarget, Severity};

/// All passes, in id order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(CombinationalCycle),
        Box::new(UndrivenSignal),
        Box::new(MultiplyDriven),
        Box::new(UndefinedOutput),
        Box::new(DeadLogic),
        Box::new(UnusedInput),
        Box::new(ConstantTable),
        Box::new(DuplicateCone),
        Box::new(DegenerateCluster),
        Box::new(OversizedCluster),
    ]
}

/// Signals a document defines: the declared inputs plus every
/// `.names` target.
fn defined_signals(doc: &BlifDoc) -> HashSet<&str> {
    let mut defined: HashSet<&str> = doc.inputs.iter().map(String::as_str).collect();
    defined.extend(doc.blocks.iter().map(|b| b.target()));
    defined
}

/// `L0001-combinational-cycle` — `.names` blocks whose dependencies
/// form a cycle. Reports the full cycle path, one diagnostic per
/// independent cycle.
pub struct CombinationalCycle;

impl Lint for CombinationalCycle {
    fn id(&self) -> &'static str {
        "L0001-combinational-cycle"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        ".names blocks form a combinational dependency cycle"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(doc) = target.doc else { return };
        // First definer wins for the dependency graph; extra drivers
        // are L0003's problem.
        let mut block_of: HashMap<&str, &NamesBlock> = HashMap::new();
        for blk in &doc.blocks {
            block_of.entry(blk.target()).or_insert(blk);
        }
        let inputs: HashSet<&str> = doc.inputs.iter().map(String::as_str).collect();
        // Kahn-style elimination: a signal is resolved when it is an
        // input, undriven (L0002 reports those), or all of its
        // defining block's fanins are resolved. Whatever cannot be
        // eliminated is on or downstream of a cycle.
        let mut resolved: HashSet<&str> = HashSet::new();
        loop {
            let mut progress = false;
            for (&t, blk) in &block_of {
                if resolved.contains(t) {
                    continue;
                }
                let ready = blk.fanins().iter().all(|f| {
                    resolved.contains(f.as_str())
                        || inputs.contains(f.as_str())
                        || !block_of.contains_key(f.as_str())
                });
                if ready {
                    resolved.insert(t);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
            // Re-run until fixed point; the loop above converges in at
            // most |blocks| passes.
        }
        let mut stuck: HashSet<&str> = block_of
            .keys()
            .copied()
            .filter(|t| !resolved.contains(t))
            .collect();
        // Extract one cycle at a time: walk unresolved target → fanin
        // edges until a signal repeats, report the loop, then cut it
        // and let elimination find further independent cycles.
        let mut starts: Vec<&str> = stuck.iter().copied().collect();
        starts.sort_unstable();
        while let Some(&start) = starts.iter().find(|s| stuck.contains(*s)) {
            let mut path: Vec<&str> = Vec::new();
            let mut cur = start;
            let cycle: Vec<String> = loop {
                if let Some(pos) = path.iter().position(|&s| s == cur) {
                    break path[pos..].iter().map(|s| s.to_string()).collect();
                }
                path.push(cur);
                let next = block_of[cur]
                    .fanins()
                    .iter()
                    .find(|f| stuck.contains(f.as_str()));
                match next {
                    Some(f) => cur = f.as_str(),
                    // Every unresolved fanin got cut by an earlier
                    // cycle extraction: this chain was only downstream
                    // of a reported cycle, not on one.
                    None => break Vec::new(),
                }
            };
            if cycle.is_empty() {
                for s in path {
                    stuck.remove(s);
                }
                continue;
            }
            for s in &cycle {
                stuck.remove(s.as_str());
            }
            let line = block_of[cycle[0].as_str()].line;
            out.push(
                Diagnostic::new(
                    self.id(),
                    severity,
                    format!("combinational cycle through {}", cycle.join(" -> ")),
                )
                .at_line(line)
                .with_signals(cycle),
            );
        }
    }
}

/// `L0002-undriven-signal` — a `.names` fanin that no input or block
/// defines.
pub struct UndrivenSignal;

impl Lint for UndrivenSignal {
    fn id(&self) -> &'static str {
        "L0002-undriven-signal"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "a signal is referenced as a fanin but never driven"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(doc) = target.doc else { return };
        let defined = defined_signals(doc);
        let mut reported: HashSet<&str> = HashSet::new();
        for blk in &doc.blocks {
            for fanin in blk.fanins() {
                if !defined.contains(fanin.as_str()) && reported.insert(fanin) {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            severity,
                            format!("signal `{fanin}` is used but never driven"),
                        )
                        .at_line(blk.line)
                        .with_signals(vec![fanin.clone()]),
                    );
                }
            }
        }
    }
}

/// `L0003-multiply-driven` — a signal defined by more than one
/// `.names` block, redefining a declared input, or an input declared
/// twice.
pub struct MultiplyDriven;

impl Lint for MultiplyDriven {
    fn id(&self) -> &'static str {
        "L0003-multiply-driven"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "a signal has more than one driver"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(doc) = target.doc else { return };
        let mut seen: HashSet<&str> = HashSet::new();
        for name in &doc.inputs {
            if !seen.insert(name) {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!("input `{name}` is declared more than once"),
                    )
                    .at_line(doc.inputs_line.unwrap_or(1))
                    .with_signals(vec![name.clone()]),
                );
            }
        }
        for blk in &doc.blocks {
            let t = blk.target();
            if !seen.insert(t) {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!("signal `{t}` is driven more than once"),
                    )
                    .at_line(blk.line)
                    .with_signals(vec![t.to_string()]),
                );
            }
        }
    }
}

/// `L0004-undefined-output` — a declared primary output that nothing
/// in the model drives.
pub struct UndefinedOutput;

impl Lint for UndefinedOutput {
    fn id(&self) -> &'static str {
        "L0004-undefined-output"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "a declared primary output is never defined"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(doc) = target.doc else { return };
        let defined = defined_signals(doc);
        for name in &doc.outputs {
            if !defined.contains(name.as_str()) {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!("output `{name}` is declared but never defined"),
                    )
                    .at_line(doc.outputs_line.unwrap_or(1))
                    .with_signals(vec![name.clone()]),
                );
            }
        }
    }
}

/// `L0005-dead-logic` — logic unreachable from every primary output.
pub struct DeadLogic;

impl Lint for DeadLogic {
    fn id(&self) -> &'static str {
        "L0005-dead-logic"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn description(&self) -> &'static str {
        "logic is unreachable from every primary output"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        if let Some(doc) = target.doc {
            if doc.outputs.is_empty() {
                // With no outputs everything is trivially dead; that
                // is the flow's NoOutputs error, not a liveness lint.
                return;
            }
            let mut block_of: HashMap<&str, &NamesBlock> = HashMap::new();
            for blk in &doc.blocks {
                block_of.entry(blk.target()).or_insert(blk);
            }
            // Reverse reachability from the outputs over target→fanin
            // edges.
            let mut live: HashSet<&str> = HashSet::new();
            let mut stack: Vec<&str> = doc.outputs.iter().map(String::as_str).collect();
            while let Some(s) = stack.pop() {
                if !live.insert(s) {
                    continue;
                }
                if let Some(blk) = block_of.get(s) {
                    stack.extend(blk.fanins().iter().map(String::as_str));
                }
            }
            for blk in &doc.blocks {
                let t = blk.target();
                if !live.contains(t) {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            severity,
                            format!("signal `{t}` does not reach any primary output"),
                        )
                        .at_line(blk.line)
                        .with_signals(vec![t.to_string()]),
                    );
                }
            }
        } else if let Some(nl) = target.netlist {
            if nl.num_outputs() == 0 {
                return;
            }
            let roots: Vec<NodeId> = nl.outputs().iter().map(|o| o.node()).collect();
            let live: HashSet<NodeId> = nl.cone(&roots).into_iter().collect();
            let dead: Vec<usize> = nl
                .iter()
                .filter(|(id, n)| n.kind().is_gate() && !live.contains(id))
                .map(|(id, _)| id.index())
                .collect();
            if !dead.is_empty() {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!(
                            "{} gate(s) do not reach any primary output (first: n{})",
                            dead.len(),
                            dead[0]
                        ),
                    )
                    .with_nodes(dead),
                );
            }
        }
    }
}

/// `L0006-unused-input` — a declared primary input that feeds nothing.
pub struct UnusedInput;

impl Lint for UnusedInput {
    fn id(&self) -> &'static str {
        "L0006-unused-input"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn description(&self) -> &'static str {
        "a primary input feeds no logic and no output"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        if let Some(doc) = target.doc {
            let mut used: HashSet<&str> = doc.outputs.iter().map(String::as_str).collect();
            for blk in &doc.blocks {
                used.extend(blk.fanins().iter().map(String::as_str));
            }
            let mut reported: HashSet<&str> = HashSet::new();
            for name in &doc.inputs {
                if !used.contains(name.as_str()) && reported.insert(name) {
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            severity,
                            format!("input `{name}` is never used"),
                        )
                        .at_line(doc.inputs_line.unwrap_or(1))
                        .with_signals(vec![name.clone()]),
                    );
                }
            }
        } else if let Some(nl) = target.netlist {
            let fanouts = nl.fanout_counts();
            for (idx, &pi) in nl.inputs().iter().enumerate() {
                if fanouts[pi.index()] == 0 {
                    let name = nl.input_name(idx);
                    out.push(
                        Diagnostic::new(
                            self.id(),
                            severity,
                            format!("input `{name}` is never used"),
                        )
                        .with_signals(vec![name.to_string()])
                        .with_nodes(vec![pi.index()]),
                    );
                }
            }
        }
    }
}

/// Ternary lattice value of a signal during constant propagation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ternary {
    Unknown,
    Const(bool),
}

/// Evaluate a `.names` cover on one assignment. `bits[i]` is fanin
/// `i`'s value. Mirrors the builder's semantics exactly: the cover is
/// the OR of all cube matches, complemented when the first cube's
/// output char is `0`; an empty cover is constant 0.
fn eval_cover(blk: &NamesBlock, bits: &[bool]) -> bool {
    if blk.cubes.is_empty() {
        return false;
    }
    let polarity_one = blk.cubes[0].1 == '1';
    let matched = blk.cubes.iter().any(|(pattern, _)| {
        pattern.chars().zip(bits).all(|(c, &b)| match c {
            '1' => b,
            '0' => !b,
            _ => true,
        })
    });
    if polarity_one {
        matched
    } else {
        !matched
    }
}

/// `L0007-constant-table` — a `.names` block with fanins whose output
/// is nevertheless constant (found by exhaustive evaluation under a
/// ternary constant-propagation lattice). Canonical zero-fanin
/// constant blocks are the *intended* way to write constants and are
/// not flagged.
pub struct ConstantTable;

/// Free-fanin budget for exhaustive cover evaluation (2^12 = 4096
/// evaluations per block, worst case).
const CONST_EXHAUSTIVE_LIMIT: usize = 12;

impl Lint for ConstantTable {
    fn id(&self) -> &'static str {
        "L0007-constant-table"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn description(&self) -> &'static str {
        "a truth table with fanins computes a constant"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(doc) = target.doc else { return };
        let mut value: HashMap<&str, Ternary> = HashMap::new();
        for name in &doc.inputs {
            value.insert(name, Ternary::Unknown);
        }
        // Fixed-point sweep in dependency order (BLIF allows any block
        // ordering); blocks on cycles or with undriven fanins never
        // become ready and are simply skipped — L0001/L0002 own those.
        let mut pending: Vec<&NamesBlock> = doc.blocks.iter().collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|blk| {
                if !blk.fanins().iter().all(|f| value.contains_key(f.as_str())) {
                    return true; // not ready yet
                }
                let lattice: Vec<Ternary> =
                    blk.fanins().iter().map(|f| value[f.as_str()]).collect();
                let free: Vec<usize> = lattice
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v == Ternary::Unknown)
                    .map(|(i, _)| i)
                    .collect();
                let verdict = if free.len() > CONST_EXHAUSTIVE_LIMIT {
                    Ternary::Unknown
                } else {
                    let mut bits = vec![false; lattice.len()];
                    for (i, v) in lattice.iter().enumerate() {
                        if let Ternary::Const(b) = v {
                            bits[i] = *b;
                        }
                    }
                    let mut folded: Option<bool> = None;
                    let mut constant = true;
                    for assign in 0..1usize << free.len() {
                        for (bit, &slot) in free.iter().enumerate() {
                            bits[slot] = assign >> bit & 1 == 1;
                        }
                        let v = eval_cover(blk, &bits);
                        match folded {
                            None => folded = Some(v),
                            Some(prev) if prev != v => {
                                constant = false;
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                    if constant {
                        Ternary::Const(folded.unwrap_or(false))
                    } else {
                        Ternary::Unknown
                    }
                };
                if let Ternary::Const(b) = verdict {
                    if !blk.fanins().is_empty() {
                        let t = blk.target();
                        out.push(
                            Diagnostic::new(
                                self.id(),
                                severity,
                                format!("table for `{t}` always evaluates to {}", u8::from(b)),
                            )
                            .at_line(blk.line)
                            .with_signals(vec![t.to_string()]),
                        );
                    }
                }
                value.insert(blk.target(), verdict);
                false
            });
            if pending.len() == before {
                break;
            }
        }
    }
}

/// `L0008-duplicate-cone` — functionally identical logic cones rooted
/// at distinct nodes. Structural hashing already shares identical
/// `(kind, fanins)` nodes at build time, so any survivor here is a
/// *functional* duplicate expressed with different structure (e.g.
/// `NAND(a,b)` next to `NOT(AND(a,b))`). Candidates are grouped by a
/// deterministic 256-sample simulation signature and only reported
/// after exhaustive truth-table confirmation, so there are no false
/// positives.
pub struct DuplicateCone;

/// Support budget for exhaustive duplicate confirmation.
const DUP_EXHAUSTIVE_LIMIT: usize = 12;

impl Lint for DuplicateCone {
    fn id(&self) -> &'static str {
        "L0008-duplicate-cone"
    }

    fn default_severity(&self) -> Severity {
        Severity::Info
    }

    fn description(&self) -> &'static str {
        "functionally identical cones are computed more than once"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(nl) = target.netlist else { return };
        if nl.num_inputs() == 0 {
            return;
        }
        // Deterministic pseudo-random stimulus: 4 blocks of 64
        // patterns from a fixed splitmix64 stream.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        const BLOCKS: usize = 4;
        let mut sigs: HashMap<NodeId, [u64; BLOCKS]> = HashMap::new();
        let mut sim = Simulator::new(nl);
        for b in 0..BLOCKS {
            let words: Vec<u64> = (0..nl.num_inputs()).map(|_| next()).collect();
            sim.run(&words);
            for (id, node) in nl.iter() {
                if node.kind().is_gate() {
                    sigs.entry(id).or_insert([0; BLOCKS])[b] = sim.value(id);
                }
            }
        }
        // Group by (signature, support) and confirm exhaustively.
        let mut groups: HashMap<([u64; BLOCKS], Vec<NodeId>), Vec<NodeId>> = HashMap::new();
        for (id, node) in nl.iter() {
            if node.kind().is_gate() {
                groups
                    .entry((sigs[&id], nl.support(&[id])))
                    .or_default()
                    .push(id);
            }
        }
        let default_lib;
        let lib = match target.library {
            Some(lib) => lib,
            None => {
                default_lib = CellLibrary::typical_65nm();
                &default_lib
            }
        };
        let mut keys: Vec<_> = groups.keys().cloned().collect();
        keys.sort_by_key(|k| groups[k][0]);
        for key in keys {
            let members = &groups[&key];
            if members.len() < 2 || key.1.len() > DUP_EXHAUSTIVE_LIMIT {
                continue;
            }
            // Confirm: partition the signature group into classes with
            // identical exhaustive truth tables.
            let mut classes: Vec<(TruthTable, Vec<NodeId>, Netlist)> = Vec::new();
            for &root in members {
                let cone = extract_cone(nl, root);
                let Ok(tt) = TruthTable::try_from_netlist(&cone) else {
                    continue;
                };
                match classes.iter_mut().find(|(t, _, _)| *t == tt) {
                    Some((_, roots, _)) => roots.push(root),
                    None => classes.push((tt, vec![root], cone)),
                }
            }
            for (_, roots, cone) in classes {
                if roots.len() < 2 {
                    continue;
                }
                let area = estimate(&cone, lib, &EstimateConfig::default()).area_um2;
                let redundant = area * (roots.len() - 1) as f64;
                let names: Vec<String> = roots.iter().map(|r| r.to_string()).collect();
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!(
                            "{} functionally identical cones ({}); ~{:.1} um^2 redundant",
                            roots.len(),
                            names.join(", "),
                            redundant
                        ),
                    )
                    .with_nodes(roots.iter().map(|r| r.index()).collect()),
                );
            }
        }
    }
}

/// Extract the fanin cone of `root` as a standalone netlist whose
/// inputs are the cone's support (in global index order) and whose
/// single output `y` is the root.
fn extract_cone(nl: &Netlist, root: NodeId) -> Netlist {
    let cone = nl.cone(&[root]);
    let mut out = Netlist::new("cone");
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for id in cone {
        let node = nl.node(id);
        let new = match node.kind() {
            GateKind::Input => {
                let pos = nl
                    .inputs()
                    .iter()
                    .position(|&p| p == id)
                    .unwrap_or_default();
                out.add_input(nl.input_name(pos).to_string())
            }
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            k => {
                let a = map[&node.fanin0().expect("gates have a first fanin")];
                match node.fanin1() {
                    Some(f) => out.gate(k, a, map[&f]),
                    // Only NOT is unary in a built netlist (BUF nodes
                    // never survive structural hashing).
                    None => out.not(a),
                }
            }
        };
        map.insert(id, new);
    }
    out.mark_output("y", map[&root]);
    out
}

/// `L0009-degenerate-cluster` — single-gate clusters: the window is
/// too small to amortize BMF profiling, so decomposition is not doing
/// its job there.
pub struct DegenerateCluster;

impl Lint for DegenerateCluster {
    fn id(&self) -> &'static str {
        "L0009-degenerate-cluster"
    }

    fn default_severity(&self) -> Severity {
        Severity::Info
    }

    fn description(&self) -> &'static str {
        "a decomposition cluster holds a single gate"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(partition) = target.partition else {
            return;
        };
        let degenerate: Vec<usize> = partition
            .clusters()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.len() <= 1)
            .map(|(i, _)| i)
            .collect();
        if !degenerate.is_empty() {
            out.push(Diagnostic::new(
                self.id(),
                severity,
                format!(
                    "{} of {} clusters hold a single gate (first: cluster {})",
                    degenerate.len(),
                    partition.len(),
                    degenerate[0]
                ),
            ));
        }
    }
}

/// `L0010-oversized-cluster` — a cluster whose boundary exceeds the
/// `(k, m)` limits the partition was built under. The Monte-Carlo
/// table network packs rows into `u16`s, so violations here would
/// corrupt probing downstream.
pub struct OversizedCluster;

impl Lint for OversizedCluster {
    fn id(&self) -> &'static str {
        "L0010-oversized-cluster"
    }

    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn description(&self) -> &'static str {
        "a cluster exceeds its k x m boundary limits"
    }

    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>) {
        let Some(partition) = target.partition else {
            return;
        };
        let (k, m) = partition.limits();
        for (i, c) in partition.clusters().iter().enumerate() {
            if c.inputs().len() > k || c.outputs().len() > m {
                out.push(
                    Diagnostic::new(
                        self.id(),
                        severity,
                        format!(
                            "cluster {i} has {} inputs / {} outputs, limits are {k}x{m}",
                            c.inputs().len(),
                            c.outputs().len()
                        ),
                    )
                    .with_nodes(c.nodes().iter().map(|n| n.index()).collect()),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_lints, LintConfig};
    use blasys_logic::blif::parse_blif_doc;

    fn lint_text(text: &str) -> Vec<Diagnostic> {
        let doc = parse_blif_doc(text).expect("structure parses");
        run_lints(&LintTarget::new().with_doc(&doc), &LintConfig::default()).diagnostics
    }

    fn ids(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn cycle_reports_full_path() {
        let diags =
            lint_text(".model m\n.inputs a\n.outputs f\n.names g f\n1 1\n.names f g\n1 1\n.end\n");
        let cycle = diags
            .iter()
            .find(|d| d.lint == "L0001-combinational-cycle")
            .expect("cycle fires");
        assert_eq!(cycle.severity, Severity::Error);
        let mut path = cycle.signals.clone();
        path.sort();
        assert_eq!(path, vec!["f".to_string(), "g".to_string()]);
        // The unused input `a` also warns; no other errors.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count(),
            1
        );
    }

    #[test]
    fn two_independent_cycles_two_diagnostics() {
        let diags = lint_text(
            ".model m\n.inputs a\n.outputs f h\n\
             .names g f\n1 1\n.names f g\n1 1\n\
             .names i h\n1 1\n.names h i\n1 1\n.end\n",
        );
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.lint == "L0001-combinational-cycle")
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn undriven_and_undefined_output() {
        let diags =
            lint_text(".model m\n.inputs a\n.outputs f ghost_out\n.names a ghost f\n11 1\n.end\n");
        let ids = ids(&diags);
        assert!(ids.contains(&"L0002-undriven-signal"), "{diags:?}");
        assert!(ids.contains(&"L0004-undefined-output"), "{diags:?}");
        let undriven = diags
            .iter()
            .find(|d| d.lint == "L0002-undriven-signal")
            .unwrap();
        assert_eq!(undriven.signals, vec!["ghost".to_string()]);
        assert_eq!(undriven.line, Some(4));
    }

    #[test]
    fn multiply_driven_signal_and_input() {
        let diags = lint_text(
            ".model m\n.inputs a a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n",
        );
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.lint == "L0003-multiply-driven")
                .count(),
            2,
            "{diags:?}"
        );
    }

    #[test]
    fn dead_logic_and_unused_input() {
        let diags = lint_text(
            ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.names b dead\n1 1\n\
             .names dead deader\n1 1\n.end\n",
        );
        let dead: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.lint == "L0005-dead-logic")
            .collect();
        assert_eq!(dead.len(), 2, "{diags:?}");
        // `b` feeds only dead logic — it is *used*, so no L0006 here.
        assert!(!ids(&diags).contains(&"L0006-unused-input"), "{diags:?}");
    }

    #[test]
    fn constant_table_fires_on_tautology_and_propagation() {
        // `t` is a tautology (matches both polarities of a); `u` is
        // constant only because its fanin `t` is (its cover ignores
        // `a` whenever t = 1).
        let diags = lint_text(
            ".model m\n.inputs a\n.outputs u\n.names a t\n1 1\n0 1\n.names t a u\n1- 1\n.end\n",
        );
        let consts: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.lint == "L0007-constant-table")
            .collect();
        assert_eq!(consts.len(), 2, "{diags:?}");
        assert!(consts.iter().any(|d| d.signals == ["t".to_string()]));
        assert!(consts.iter().any(|d| d.signals == ["u".to_string()]));
    }

    #[test]
    fn canonical_constant_blocks_do_not_fire() {
        let diags =
            lint_text(".model m\n.inputs a\n.outputs f z\n.names a f\n1 1\n.names z\n1\n.end\n");
        assert!(!ids(&diags).contains(&"L0007-constant-table"), "{diags:?}");
    }

    #[test]
    fn duplicate_cone_confirms_functional_duplicates() {
        // NAND(a,b) and NOT(AND(a,b)): structurally distinct after
        // strash, functionally identical.
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nand = nl.nand(a, b);
        let and = nl.and(a, b);
        let not_and = nl.not(and);
        nl.mark_output("x", nand);
        nl.mark_output("y", not_and);
        let mut diags = Vec::new();
        DuplicateCone.run(
            &LintTarget::new().with_netlist(&nl),
            Severity::Info,
            &mut diags,
        );
        let dup = diags
            .iter()
            .find(|d| d.lint == "L0008-duplicate-cone")
            .expect("duplicate fires");
        assert!(dup.nodes.contains(&nand.index()), "{dup:?}");
        assert!(dup.nodes.contains(&not_and.index()), "{dup:?}");
        assert!(dup.message.contains("um^2"), "{dup:?}");
    }

    #[test]
    fn distinct_functions_never_report() {
        let mut nl = Netlist::new("clean");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.xor(a, b);
        let o = nl.or(a, b);
        nl.mark_output("x", x);
        nl.mark_output("o", o);
        let mut diags = Vec::new();
        DuplicateCone.run(
            &LintTarget::new().with_netlist(&nl),
            Severity::Info,
            &mut diags,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cluster_lints_fire_on_partition() {
        use blasys_decomp::{decompose, DecompConfig};
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.and(a, b);
        nl.mark_output("z", g);
        let partition = decompose(&nl, &DecompConfig::default());
        let mut diags = Vec::new();
        DegenerateCluster.run(
            &LintTarget::new()
                .with_netlist(&nl)
                .with_partition(&partition),
            Severity::Info,
            &mut diags,
        );
        assert_eq!(ids(&diags), ["L0009-degenerate-cluster"]);
        // A healthy partition has no oversized clusters.
        let mut diags = Vec::new();
        OversizedCluster.run(
            &LintTarget::new()
                .with_netlist(&nl)
                .with_partition(&partition),
            Severity::Error,
            &mut diags,
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn clean_model_is_clean() {
        let diags = lint_text(
            ".model m\n.inputs a b\n.outputs f g\n.names a b f\n11 1\n.names a b g\n10 1\n01 1\n.end\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
