//! Static analysis for BLASYS circuits: a lint pass framework over
//! parsed BLIF documents, built netlists, and decomposition
//! partitions, plus an IR invariant verifier for flow stage
//! boundaries.
//!
//! # Two surfaces
//!
//! A built [`Netlist`] cannot contain a combinational cycle, an
//! undriven net, or a multiply-driven signal — topological storage and
//! structural hashing make those states unrepresentable. Lints for
//! those defect classes therefore run on the *structural* form of a
//! BLIF model ([`BlifDoc`], produced by
//! [`parse_blif_doc`](blasys_logic::blif::parse_blif_doc)) before any
//! netlist is built, where the defects are still visible and carry
//! source lines. Redundancy lints (functionally duplicate cones) and
//! decomposition lints (degenerate / oversized clusters) run on the
//! built [`Netlist`] and its [`Partition`].
//!
//! # Example
//!
//! ```
//! use blasys_lint::{run_lints, LintConfig, LintTarget, Severity};
//! use blasys_logic::blif::parse_blif_doc;
//!
//! let doc = parse_blif_doc(
//!     ".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n",
//! )
//! .unwrap();
//! let report = run_lints(
//!     &LintTarget::new().with_doc(&doc),
//!     &LintConfig::default(),
//! );
//! assert!(report.has_errors());
//! assert_eq!(report.errors().next().unwrap().lint, "L0001-combinational-cycle");
//! ```

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

use blasys_decomp::Partition;
use blasys_logic::blif::BlifDoc;
use blasys_logic::Netlist;
use blasys_synth::CellLibrary;

pub mod passes;
pub mod verify;

pub use verify::{verify_interface, verify_netlist, verify_partition};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never blocks anything.
    Info,
    /// Suspicious but drivable; blocks only under `--deny warnings`.
    Warn,
    /// The circuit cannot (or must not) be driven through the flow.
    Error,
}

impl Severity {
    /// Lowercase name (`"info"` / `"warn"` / `"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of a lint pass or the IR verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint id, e.g. `"L0001-combinational-cycle"`.
    pub lint: &'static str,
    /// Effective severity (after [`LintConfig`] overrides).
    pub severity: Severity,
    /// Human-readable description of the finding.
    pub message: String,
    /// Signal names involved (e.g. the full cycle path, in order).
    pub signals: Vec<String>,
    /// Netlist node indices involved (empty for document-level lints).
    pub nodes: Vec<usize>,
    /// 1-based line in the source BLIF, when known.
    pub line: Option<usize>,
}

impl Diagnostic {
    /// A new diagnostic with no location or subject details.
    pub fn new(lint: &'static str, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            lint,
            severity,
            message: message.into(),
            signals: Vec::new(),
            nodes: Vec::new(),
            line: None,
        }
    }

    /// Attach a source line.
    pub fn at_line(mut self, line: usize) -> Diagnostic {
        self.line = Some(line);
        self
    }

    /// Attach the involved signal names.
    pub fn with_signals(mut self, signals: Vec<String>) -> Diagnostic {
        self.signals = signals;
        self
    }

    /// Attach the involved node indices.
    pub fn with_nodes(mut self, nodes: Vec<usize>) -> Diagnostic {
        self.nodes = nodes;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        if let Some(line) = self.line {
            write!(f, " line {line}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Per-lint level override: the default severity of a lint can be
/// raised, lowered, or silenced entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Do not run the lint at all.
    Allow,
    /// Report at [`Severity::Info`].
    Info,
    /// Report at [`Severity::Warn`].
    Warn,
    /// Report at [`Severity::Error`].
    Error,
}

impl LintLevel {
    /// The severity this level reports at (`None` for [`LintLevel::Allow`]).
    pub fn severity(self) -> Option<Severity> {
        match self {
            LintLevel::Allow => None,
            LintLevel::Info => Some(Severity::Info),
            LintLevel::Warn => Some(Severity::Warn),
            LintLevel::Error => Some(Severity::Error),
        }
    }
}

/// Configuration of a lint run: per-lint level overrides and the
/// warnings-as-errors switch.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    levels: BTreeMap<String, LintLevel>,
    /// Treat any warning as run-failing ([`LintReport::denied`]).
    pub deny_warnings: bool,
}

impl LintConfig {
    /// The default configuration: every lint at its default severity.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Override one lint's level (by full id, e.g.
    /// `"L0005-dead-logic"`).
    pub fn level(mut self, lint: impl Into<String>, level: LintLevel) -> LintConfig {
        self.levels.insert(lint.into(), level);
        self
    }

    /// Set the warnings-as-errors switch.
    pub fn deny_warnings(mut self, deny: bool) -> LintConfig {
        self.deny_warnings = deny;
        self
    }

    /// The severity `lint` reports at under this configuration
    /// (`None` = the lint is allowed/disabled).
    pub fn effective(&self, lint: &dyn Lint) -> Option<Severity> {
        match self.levels.get(lint.id()) {
            Some(level) => level.severity(),
            None => Some(lint.default_severity()),
        }
    }
}

/// What a lint run analyzes. Each surface is optional; a lint that
/// needs an absent surface is a silent no-op, so one `run_lints` call
/// covers everything from a bare parsed document to a fully
/// decomposed circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintTarget<'a> {
    /// The structural BLIF document (cycle / driver / liveness lints).
    pub doc: Option<&'a BlifDoc>,
    /// The built netlist (redundancy lints; liveness when no doc).
    pub netlist: Option<&'a Netlist>,
    /// The decomposition partition (cluster lints).
    pub partition: Option<&'a Partition>,
    /// Cell library for redundant-area estimation (defaults to the
    /// typical 65 nm library when absent).
    pub library: Option<&'a CellLibrary>,
}

impl<'a> LintTarget<'a> {
    /// An empty target; attach surfaces with the `with_*` builders.
    pub fn new() -> LintTarget<'a> {
        LintTarget::default()
    }

    /// Attach a parsed BLIF document.
    pub fn with_doc(mut self, doc: &'a BlifDoc) -> LintTarget<'a> {
        self.doc = Some(doc);
        self
    }

    /// Attach a built netlist.
    pub fn with_netlist(mut self, nl: &'a Netlist) -> LintTarget<'a> {
        self.netlist = Some(nl);
        self
    }

    /// Attach a decomposition partition (requires a netlist too).
    pub fn with_partition(mut self, partition: &'a Partition) -> LintTarget<'a> {
        self.partition = Some(partition);
        self
    }

    /// Attach a cell library for area estimation.
    pub fn with_library(mut self, library: &'a CellLibrary) -> LintTarget<'a> {
        self.library = Some(library);
        self
    }
}

/// A lint pass: a stable id, a default severity, and the analysis
/// itself.
pub trait Lint {
    /// Stable id, `L<nnnn>-<kebab-name>` (e.g.
    /// `"L0001-combinational-cycle"`). Never reused or renumbered.
    fn id(&self) -> &'static str;

    /// Severity when no [`LintConfig`] override is present.
    fn default_severity(&self) -> Severity;

    /// One-line description of what the lint detects.
    fn description(&self) -> &'static str;

    /// Run the analysis, pushing findings at `severity` (the effective
    /// level resolved by the caller).
    fn run(&self, target: &LintTarget<'_>, severity: Severity, out: &mut Vec<Diagnostic>);
}

/// All lints, in id order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    passes::all()
}

/// The findings of one lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Every finding, in registry order (then source order per lint).
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the producing config had `deny_warnings` set.
    pub deny_warnings: bool,
}

impl LintReport {
    /// Findings of exactly `severity`.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.at(Severity::Error)
    }

    /// Warn-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> + '_ {
        self.at(Severity::Warn)
    }

    /// Whether any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the run fails under `deny_warnings`: no errors, but at
    /// least one warning while the config denies warnings.
    pub fn denied(&self) -> bool {
        self.deny_warnings && !self.has_errors() && self.warnings().next().is_some()
    }

    /// Count per severity as `(errors, warnings, infos)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => c.0 += 1,
                Severity::Warn => c.1 += 1,
                Severity::Info => c.2 += 1,
            }
        }
        c
    }
}

/// Run every registered lint over `target` under `config`.
pub fn run_lints(target: &LintTarget<'_>, config: &LintConfig) -> LintReport {
    let mut diagnostics = Vec::new();
    for lint in registry() {
        if let Some(severity) = config.effective(lint.as_ref()) {
            lint.run(target, severity, &mut diagnostics);
        }
    }
    LintReport {
        diagnostics,
        deny_warnings: config.deny_warnings,
    }
}

/// Run only the lints whose *effective* severity is
/// [`Severity::Error`] — the admission-control subset a flow front-end
/// needs before spending cycles on BMF.
pub fn run_error_lints(target: &LintTarget<'_>, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diagnostics = Vec::new();
    for lint in registry() {
        if config.effective(lint.as_ref()) == Some(Severity::Error) {
            lint.run(target, Severity::Error, &mut diagnostics);
        }
    }
    diagnostics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_sorted_and_stable() {
        let lints = registry();
        let ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids, sorted, "registry must be in unique id order");
        for id in &ids {
            assert!(id.starts_with('L'), "{id}");
            assert!(id.len() > 6 && id.as_bytes()[5] == b'-', "{id}");
            assert!(!lints.is_empty());
        }
    }

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn config_overrides_silence_and_rescale() {
        let doc = blasys_logic::blif::parse_blif_doc(
            ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.end\n",
        )
        .unwrap();
        let target = LintTarget::new().with_doc(&doc);
        // `b` is unused: default Warn.
        let report = run_lints(&target, &LintConfig::default());
        assert_eq!(report.counts().1, 1, "{:?}", report.diagnostics);
        // Silenced.
        let report = run_lints(
            &target,
            &LintConfig::new().level("L0006-unused-input", LintLevel::Allow),
        );
        assert_eq!(report.diagnostics.len(), 0);
        // Promoted to error.
        let report = run_lints(
            &target,
            &LintConfig::new().level("L0006-unused-input", LintLevel::Error),
        );
        assert!(report.has_errors());
    }

    #[test]
    fn deny_warnings_denies_only_without_errors() {
        let doc = blasys_logic::blif::parse_blif_doc(
            ".model m\n.inputs a b\n.outputs f\n.names a f\n1 1\n.end\n",
        )
        .unwrap();
        let target = LintTarget::new().with_doc(&doc);
        let clean = run_lints(&target, &LintConfig::new());
        assert!(!clean.denied());
        let denied = run_lints(&target, &LintConfig::new().deny_warnings(true));
        assert!(denied.denied());
        assert!(!denied.has_errors());
    }

    #[test]
    fn diagnostic_display_names_lint_and_line() {
        let d = Diagnostic::new("L0001-combinational-cycle", Severity::Error, "cycle a -> b")
            .at_line(7);
        assert_eq!(
            d.to_string(),
            "error[L0001-combinational-cycle] line 7: cycle a -> b"
        );
    }
}
