//! Datapath generators for the six paper benchmarks.

use blasys_logic::builder::{abs_diff, add, input_bus, mark_output_bus, mul, sub, zext, Bus};
use blasys_logic::Netlist;

/// `width`-bit ripple-carry adder: `2·width` inputs, `width + 1`
/// outputs (`Adder32` in the paper at `width = 32`).
pub fn adder(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("adder{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let s = add(&mut nl, &a, &b);
    mark_output_bus(&mut nl, "s", &s);
    nl
}

/// `width × width` unsigned array multiplier: `2·width` inputs,
/// `2·width` outputs (`Mult8` at `width = 8`).
pub fn multiplier(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("mult{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let p = mul(&mut nl, &a, &b);
    mark_output_bus(&mut nl, "p", &p);
    nl
}

/// Butterfly structure (`BUT`): computes `a + b` and `a − b` on two
/// `width`-bit operands. At `width = 8`: 16 inputs, 18 outputs
/// (9-bit sum, 9-bit two's-complement difference), matching Table 1.
pub fn butterfly(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("butterfly{width}"));
    let a = input_bus(&mut nl, "a", width);
    let b = input_bus(&mut nl, "b", width);
    let s = add(&mut nl, &a, &b);
    mark_output_bus(&mut nl, "s", &s);
    // a - b over width+1 bits: sign-extend operands one bit, subtract
    // modulo 2^(width+1); the top bit is the sign.
    let a_ext = zext(&mut nl, &a, width + 1);
    let b_ext = zext(&mut nl, &b, width + 1);
    let (d, _no_borrow) = sub(&mut nl, &a_ext, &b_ext);
    mark_output_bus(&mut nl, "d", &d);
    nl
}

/// Multiply-accumulate (`MAC`): `acc + a·b` with `op_width`-bit
/// operands and an `acc_width`-bit accumulator. At `(8, 32)`:
/// 48 inputs, 33 outputs, matching Table 1.
pub fn mac(op_width: usize, acc_width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("mac{op_width}x{acc_width}"));
    let a = input_bus(&mut nl, "a", op_width);
    let b = input_bus(&mut nl, "b", op_width);
    let acc = input_bus(&mut nl, "acc", acc_width);
    let p = mul(&mut nl, &a, &b);
    let p_ext = zext(&mut nl, &p, acc_width);
    let s = add(&mut nl, &acc, &p_ext);
    mark_output_bus(&mut nl, "s", &s);
    nl
}

/// Sum of absolute differences (`SAD`): `acc + |a − b|` with
/// `op_width`-bit operands and an `acc_width`-bit accumulator. At
/// `(8, 32)`: 48 inputs, 33 outputs, matching Table 1.
pub fn sad(op_width: usize, acc_width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("sad{op_width}x{acc_width}"));
    let a = input_bus(&mut nl, "a", op_width);
    let b = input_bus(&mut nl, "b", op_width);
    let acc = input_bus(&mut nl, "acc", acc_width);
    let d = abs_diff(&mut nl, &a, &b);
    let d_ext = zext(&mut nl, &d, acc_width);
    let s = add(&mut nl, &acc, &d_ext);
    mark_output_bus(&mut nl, "s", &s);
    nl
}

/// 4-tap FIR filter (`FIR`): `Σ x_i · c_i` over four `width`-bit
/// samples and four `width`-bit coefficients, truncated to `2·width`
/// output bits. At `width = 8`: 64 inputs, 16 outputs, matching
/// Table 1.
pub fn fir4(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("fir4x{width}"));
    let xs: Vec<Bus> = (0..4)
        .map(|i| input_bus(&mut nl, &format!("x{i}_"), width))
        .collect();
    let cs: Vec<Bus> = (0..4)
        .map(|i| input_bus(&mut nl, &format!("c{i}_"), width))
        .collect();
    let mut acc: Option<Bus> = None;
    for (x, c) in xs.iter().zip(&cs) {
        let p = mul(&mut nl, x, c);
        acc = Some(match acc {
            None => p,
            Some(prev) => add(&mut nl, &prev, &p),
        });
    }
    let y = acc.unwrap().truncated(2 * width);
    mark_output_bus(&mut nl, "y", &y);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::Simulator;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Drive a netlist with one scalar assignment per named bus and
    /// return the output value (outputs are marked LSB-first).
    fn eval(nl: &Netlist, values: &[(&str, u64)]) -> u64 {
        let mut words = vec![0u64; nl.num_inputs()];
        for (i, word) in words.iter_mut().enumerate() {
            let name = nl.input_name(i);
            for (prefix, v) in values {
                if let Some(idx) = name.strip_prefix(prefix) {
                    if let Ok(bit) = idx.parse::<usize>() {
                        if v >> bit & 1 == 1 {
                            *word = !0;
                        }
                    }
                }
            }
        }
        let mut sim = Simulator::new(nl);
        let out = sim.run(&words);
        let mut v = 0u64;
        for (o, w) in out.iter().enumerate() {
            v |= (w & 1) << o;
        }
        v
    }

    #[test]
    fn paper_interfaces_match_table1() {
        let cases = [
            (adder(32), 64, 33),
            (multiplier(8), 16, 16),
            (butterfly(8), 16, 18),
            (mac(8, 32), 48, 33),
            (sad(8, 32), 48, 33),
            (fir4(8), 64, 16),
        ];
        for (nl, ins, outs) in cases {
            assert_eq!(nl.num_inputs(), ins, "{}", nl.name());
            assert_eq!(nl.num_outputs(), outs, "{}", nl.name());
            assert!(nl.validate().is_ok());
        }
    }

    #[test]
    fn adder_computes_sums() {
        let nl = adder(16);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let a = rng.gen::<u64>() & 0xFFFF;
            let b = rng.gen::<u64>() & 0xFFFF;
            assert_eq!(eval(&nl, &[("a", a), ("b", b)]), a + b);
        }
    }

    #[test]
    fn multiplier_computes_products() {
        let nl = multiplier(8);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            assert_eq!(eval(&nl, &[("a", a), ("b", b)]), a * b);
        }
    }

    #[test]
    fn butterfly_computes_sum_and_difference() {
        let nl = butterfly(8);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            let v = eval(&nl, &[("a", a), ("b", b)]);
            let s = v & 0x1FF;
            let d = v >> 9 & 0x1FF;
            assert_eq!(s, a + b);
            assert_eq!(d, (a.wrapping_sub(b)) & 0x1FF, "a={a} b={b}");
        }
    }

    #[test]
    fn mac_accumulates_products() {
        let nl = mac(8, 32);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..30 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            let acc = rng.gen::<u64>() & 0xFFFF_FFFF;
            assert_eq!(eval(&nl, &[("a", a), ("b", b), ("acc", acc)]), acc + a * b);
        }
    }

    #[test]
    fn sad_accumulates_absolute_differences() {
        let nl = sad(8, 32);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..30 {
            let a = rng.gen::<u64>() & 0xFF;
            let b = rng.gen::<u64>() & 0xFF;
            let acc = rng.gen::<u64>() & 0xFFFF_FFFF;
            assert_eq!(
                eval(&nl, &[("a", a), ("b", b), ("acc", acc)]),
                acc + a.abs_diff(b)
            );
        }
    }

    #[test]
    fn fir_computes_dot_product_mod_2_16() {
        let nl = fir4(8);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..20 {
            let xs: Vec<u64> = (0..4).map(|_| rng.gen::<u64>() & 0xFF).collect();
            let cs: Vec<u64> = (0..4).map(|_| rng.gen::<u64>() & 0xFF).collect();
            let expect: u64 = xs.iter().zip(&cs).map(|(x, c)| x * c).sum::<u64>() & 0xFFFF;
            let inputs: Vec<(String, u64)> = (0..4)
                .map(|i| (format!("x{i}_"), xs[i]))
                .chain((0..4).map(|i| (format!("c{i}_"), cs[i])))
                .collect();
            let refs: Vec<(&str, u64)> = inputs.iter().map(|(s, v)| (s.as_str(), *v)).collect();
            assert_eq!(eval(&nl, &refs), expect);
        }
    }

    #[test]
    fn small_widths_are_exhaustively_correct() {
        let nl = adder(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                assert_eq!(eval(&nl, &[("a", a), ("b", b)]), a + b);
            }
        }
        let nl = multiplier(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                assert_eq!(eval(&nl, &[("a", a), ("b", b)]), a * b);
            }
        }
    }
}
