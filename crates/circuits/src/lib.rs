//! Benchmark circuit generators for the BLASYS reproduction.
//!
//! Table 1 of the paper evaluates six combinational testcases; this
//! crate regenerates each with the exact interface the paper reports:
//!
//! | name    | function                        | I/O    |
//! |---------|---------------------------------|--------|
//! | Adder32 | 32-bit adder                    | 64/33  |
//! | Mult8   | 8-bit multiplier                | 16/16  |
//! | BUT     | butterfly structure             | 16/18  |
//! | MAC     | multiply-accumulate (32-bit acc)| 48/33  |
//! | SAD     | sum of absolute difference      | 48/33  |
//! | FIR     | 4-tap FIR filter                | 64/16  |
//!
//! plus the 4-input/4-output illustrative circuit of Figure 3. The
//! [`suite`] module bundles them for the experiment harness.
//!
//! # Example
//!
//! ```
//! use blasys_circuits::{adder, multiplier};
//!
//! let add32 = adder(32);
//! assert_eq!(add32.num_inputs(), 64);
//! assert_eq!(add32.num_outputs(), 33);
//!
//! let mult8 = multiplier(8);
//! assert_eq!(mult8.num_inputs(), 16);
//! assert_eq!(mult8.num_outputs(), 16);
//! ```

pub mod fig3;
pub mod generators;
pub mod suite;

pub use fig3::{fig3_truth_table, FIG3_ROWS};
pub use generators::{adder, butterfly, fir4, mac, multiplier, sad};
pub use suite::{all_benchmarks, benchmark, Benchmark};
