//! The illustrative 4-input / 4-output circuit of the paper's
//! Figure 3, given there by its full truth table.
//!
//! The paper factorizes this table at `f = 3, 2, 1` with ASSO under
//! the OR semi-ring, reporting Hamming distances of 3, 6 and 13 and
//! synthesized areas of 19.1, 16.2 and 9.4 µm² against 22.3 µm² for
//! the exact circuit. The `fig3` experiment binary regenerates that
//! series.

use blasys_logic::TruthTable;

/// The 16 rows of Figure 3's original truth table, packed LSB-first:
/// bit 0 = `z1`, bit 1 = `z2`, bit 2 = `z3`, bit 3 = `z4`, row index =
/// input assignment (input 1 is the table's leftmost input bit).
pub const FIG3_ROWS: [u64; 16] = [
    0b1000, // 0000 -> z=0001
    0b1001, // 0001 -> 1001
    0b1101, // 0010 -> 1011
    0b1101, // 0011 -> 1011
    0b0000, // 0100 -> 0000
    0b0001, // 0101 -> 1000
    0b1101, // 0110 -> 1011
    0b1101, // 0111 -> 1011
    0b0101, // 1000 -> 1010
    0b0101, // 1001 -> 1010
    0b0001, // 1010 -> 1000
    0b0001, // 1011 -> 1000
    0b1001, // 1100 -> 1001
    0b1011, // 1101 -> 1101
    0b0111, // 1110 -> 1110
    0b0101, // 1111 -> 1010
];

/// The Figure 3 truth table as a [`TruthTable`] (4 inputs, 4 outputs;
/// output 0 = `z1` … output 3 = `z4`).
pub fn fig3_truth_table() -> TruthTable {
    TruthTable::from_fn(4, 4, |row| FIG3_ROWS[row])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_rows() {
        let tt = fig3_truth_table();
        assert_eq!(tt.num_inputs(), 4);
        assert_eq!(tt.num_outputs(), 4);
        // Row 0000 in the paper reads "0 0 0 1" (z1 z2 z3 z4).
        assert!(!tt.get(0, 0) && !tt.get(0, 1) && !tt.get(0, 2) && tt.get(0, 3));
        // Row 1101 reads "1 1 0 1".
        assert!(tt.get(0b1101, 0) && tt.get(0b1101, 1) && !tt.get(0b1101, 2) && tt.get(0b1101, 3));
        // Row 1110 reads "1 1 1 0".
        assert!(tt.get(0b1110, 0) && tt.get(0b1110, 1) && tt.get(0b1110, 2) && !tt.get(0b1110, 3));
    }

    #[test]
    fn column_densities_match_paper() {
        // z2 is 1 on exactly two rows (1101 and 1110); z1 everywhere
        // except 0000 and 0100; z3 and z4 on eight rows each.
        let tt = fig3_truth_table();
        assert_eq!(tt.count_ones(0), 14);
        assert_eq!(tt.count_ones(1), 2);
        assert_eq!(tt.count_ones(2), 8);
        assert_eq!(tt.count_ones(3), 8);
    }
}
