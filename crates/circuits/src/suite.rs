//! Registry of the paper's benchmark set.

use blasys_logic::Netlist;

use crate::generators;

/// A named benchmark with its paper metadata.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's name for the testcase (`"Adder32"`, ...).
    pub name: &'static str,
    /// One-line functional description from Table 1.
    pub description: &'static str,
    /// Expected input count per Table 1.
    pub num_inputs: usize,
    /// Expected output count per Table 1.
    pub num_outputs: usize,
    build: fn() -> Netlist,
}

impl Benchmark {
    /// Generate the netlist.
    pub fn build(&self) -> Netlist {
        (self.build)()
    }
}

/// All six Table 1 benchmarks, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Adder32",
            description: "32-bit Adder",
            num_inputs: 64,
            num_outputs: 33,
            build: || generators::adder(32),
        },
        Benchmark {
            name: "Mult8",
            description: "8-bit Multiplier",
            num_inputs: 16,
            num_outputs: 16,
            build: || generators::multiplier(8),
        },
        Benchmark {
            name: "BUT",
            description: "Butterfly Structure",
            num_inputs: 16,
            num_outputs: 18,
            build: || generators::butterfly(8),
        },
        Benchmark {
            name: "MAC",
            description: "Multiply and Accumulate with 32-bit Accumulator",
            num_inputs: 48,
            num_outputs: 33,
            build: || generators::mac(8, 32),
        },
        Benchmark {
            name: "SAD",
            description: "Sum of Absolute Difference",
            num_inputs: 48,
            num_outputs: 33,
            build: || generators::sad(8, 32),
        },
        Benchmark {
            name: "FIR",
            description: "4-Tap FIR Filter",
            num_inputs: 64,
            num_outputs: 16,
            build: || generators::fir4(8),
        },
    ]
}

/// Look up one benchmark by (case-insensitive) name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_generated_interfaces() {
        for b in all_benchmarks() {
            let nl = b.build();
            assert_eq!(nl.num_inputs(), b.num_inputs, "{}", b.name);
            assert_eq!(nl.num_outputs(), b.num_outputs, "{}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mult8").is_some());
        assert!(benchmark("MULT8").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn six_benchmarks_in_paper_order() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names, ["Adder32", "Mult8", "BUT", "MAC", "SAD", "FIR"]);
    }
}
