//! Scoped work-stealing thread pool for the BLASYS flow.
//!
//! The flow's hot loops — per-window BMF profiling and the per-step
//! candidate sweep of the greedy exploration — are embarrassingly
//! parallel: every task reads a shared immutable model and writes only
//! its own result slot. This crate provides the minimal execution
//! layer they need, built entirely on [`std::thread::scope`] (the
//! build environment has no access to crates.io, so no `rayon`):
//!
//! * [`Parallelism`] — the user-facing knob (`Serial`, `Threads(n)`,
//!   `Auto`), threaded through the `Blasys` builder and readable from
//!   the `BLASYS_THREADS` environment variable;
//! * [`par_run`] / [`par_run_with`] / [`par_run_states`] — fork-join
//!   map over task indices `0..n`, returning results **in task order**
//!   regardless of which worker executed what. `par_run_with` gives
//!   every worker a scratch state reused across all tasks the worker
//!   executes; `par_run_states` borrows caller-owned states so they
//!   also survive *between* fork-joins (the Monte-Carlo probe overlay
//!   reused across every exploration step).
//!
//! # Scheduling
//!
//! Tasks are seeded round-robin-chunked into one deque per worker;
//! a worker pops from the front of its own deque and, when empty,
//! steals from the back of the fullest victim. This keeps mostly
//! cache-friendly contiguous runs per worker while letting short
//! tasks flow to idle workers when task sizes are uneven (BMF windows
//! and probe cones vary wildly in cost).
//!
//! # Panics and nesting
//!
//! A panic in any task aborts the remaining work and is re-raised on
//! the caller's thread with its original payload. Nested *parallel*
//! scopes are rejected (a task spawning another parallel `par_run`
//! would deadlock-prone oversubscribe the pool); running a `Serial`
//! map inside a worker is always allowed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use blasys_obs::{Counter, Gauge, Registry};

/// How much parallelism a flow phase may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded execution on the calling thread (no pool).
    Serial,
    /// A fixed number of worker threads (`Threads(1)` ≡ `Serial`).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// The worker count this setting resolves to on this machine.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Parse a user-facing spelling, shared by the `BLASYS_THREADS`
    /// environment variable and the experiment binaries' `--threads`
    /// flag: `auto` or `0` → `Auto`, `1` or anything unparseable →
    /// `Serial`, `n` → `Threads(n)`.
    pub fn parse(s: &str) -> Parallelism {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "0" => Parallelism::Auto,
            s => match s.parse::<usize>() {
                Ok(1) | Err(_) => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
            },
        }
    }

    /// Read the setting from the `BLASYS_THREADS` environment
    /// variable via [`Parallelism::parse`] (unset → `Serial`).
    pub fn from_env() -> Parallelism {
        match std::env::var("BLASYS_THREADS") {
            Ok(s) => Parallelism::parse(&s),
            Err(_) => Parallelism::Serial,
        }
    }
}

/// The default honors `BLASYS_THREADS` (see [`Parallelism::from_env`])
/// so the whole test suite and every flow exercise the parallel path
/// when CI sets the variable. Results are bit-identical either way.
impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

thread_local! {
    /// Set while the current thread is a pool worker: parallel
    /// scopes must not nest.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the calling thread is currently a pool worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Run `f(0..tasks)` under `par`, returning results in task order.
///
/// # Panics
///
/// Re-raises the first task panic on the calling thread. Panics if
/// called with a parallel setting from inside a pool worker (nested
/// scopes are rejected).
pub fn par_run<R, F>(par: Parallelism, tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_run_with(par, tasks, || (), |(), i| f(i))
}

/// Like [`par_run`], but every worker gets a scratch state built by
/// `init` and passed mutably to each of its tasks. Use this for
/// allocation-heavy per-thread scratch built fresh per call; when the
/// same states should survive *across* calls (e.g. one Monte-Carlo
/// probe overlay per worker reused over every exploration step), build
/// them once and use [`par_run_states`] instead.
///
/// # Panics
///
/// Same contract as [`par_run`].
pub fn par_run_with<S, R, I, F>(par: Parallelism, tasks: usize, init: I, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = par.worker_count().min(tasks);
    let mut states: Vec<S> = (0..workers).map(|_| init()).collect();
    par_run_states(par, tasks, &mut states, f)
}

/// Like [`par_run`], but worker `w` borrows `states[w]` mutably for
/// every task it executes. The states survive the call, so hot loops
/// can hoist them out and reuse them across many fork-joins — no
/// per-call allocation. `states` must hold at least
/// `min(par.worker_count(), tasks)` entries (extras are unused).
///
/// # Panics
///
/// Same contract as [`par_run`]; additionally panics if `states` has
/// fewer entries than the resolved worker count.
pub fn par_run_states<S, R, F>(par: Parallelism, tasks: usize, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = par.worker_count().min(tasks);
    assert!(
        states.len() >= workers,
        "par_run_states needs one state per worker ({} < {workers})",
        states.len()
    );
    if workers <= 1 {
        // Serial fast path: no scope, no queues; legal inside a worker.
        let state = &mut states[0];
        return (0..tasks).map(|i| f(state, i)).collect();
    }
    assert!(
        !in_worker(),
        "nested blasys-par parallel scope: a pool task attempted to start \
         another parallel par_run (use Parallelism::Serial for inner maps)"
    );

    // One deque per worker, seeded with contiguous chunks so each
    // worker starts on a cache-friendly run of neighboring tasks.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = tasks * w / workers;
            let hi = tasks * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let abort = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let mut results: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
    let mut done: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = states[..workers]
            .iter_mut()
            .enumerate()
            .map(|(w, state)| {
                let queues = &queues;
                let abort = &abort;
                let panic_payload = &panic_payload;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|g| g.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while !abort.load(Ordering::Relaxed) {
                        let Some((task, _stolen)) = next_task(queues, w) else {
                            break;
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(state, task))) {
                            Ok(r) => local.push((task, r)),
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                *panic_payload.lock().unwrap() = Some(e);
                                break;
                            }
                        }
                    }
                    IN_WORKER.with(|g| g.set(false));
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => done.push(local),
                Err(e) => {
                    // Worker died outside `catch_unwind` (shouldn't
                    // happen, but don't lose the payload if it does).
                    abort.store(true, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap();
                    slot.get_or_insert(e);
                }
            }
        }
    });
    if let Some(payload) = panic_payload.lock().unwrap().take() {
        resume_unwind(payload);
    }
    for (i, r) in done.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every task produced a result"))
        .collect()
}

// ---------------------------------------------------------------------------
// Persistent pool
// ---------------------------------------------------------------------------

/// Per-worker scheduling counters and a queue-depth gauge for a
/// [`Pool`], registered in a [`blasys_obs::Registry`].
///
/// These are **wall-clock observations**, not flow data: how many
/// tasks each worker executed, how many it obtained by stealing, and
/// how often it drained the queues and went idle all depend on thread
/// timing and vary run to run (unlike the flow's deterministic engine
/// counters). Attach via [`Pool::new_with_metrics`].
#[derive(Debug)]
pub struct PoolMetrics {
    /// `tasks[w]`: tasks worker `w` executed.
    tasks: Vec<Arc<Counter>>,
    /// `steals[w]`: tasks worker `w` took from another worker's queue.
    steals: Vec<Arc<Counter>>,
    /// `idle[w]`: times worker `w` found the queues empty and went
    /// idle for the rest of a job.
    idle: Vec<Arc<Counter>>,
    /// Task count of the job currently in flight (0 between jobs).
    queue_depth: Arc<Gauge>,
}

impl PoolMetrics {
    /// Register `pool.worker<w>.{tasks,steals,idle}` counters for
    /// `workers` workers plus the `pool.queue_depth` gauge.
    pub fn register(registry: &Registry, workers: usize) -> PoolMetrics {
        PoolMetrics {
            tasks: (0..workers)
                .map(|w| registry.counter(&format!("pool.worker{w}.tasks")))
                .collect(),
            steals: (0..workers)
                .map(|w| registry.counter(&format!("pool.worker{w}.steals")))
                .collect(),
            idle: (0..workers)
                .map(|w| registry.counter(&format!("pool.worker{w}.idle")))
                .collect(),
            queue_depth: registry.gauge("pool.queue_depth"),
        }
    }
}

/// A type-erased fork-join job: `call(ctx, worker_index)` drains the
/// job's task queues. The pointer is only dereferenced while the
/// submitting call blocks in [`Pool::run_states`], so the borrowed
/// closure/state/result storage it points at is always live.
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
}

// SAFETY: the ctx pointer crosses into worker threads, but the data it
// points at is a `JobCtx` whose fields are constrained to `Send`/`Sync`
// types by the `run_states` signature, and the submitter blocks until
// every worker is done with the job before the storage goes away.
unsafe impl Send for Job {}

struct JobSlot {
    /// Monotone job counter; workers run each epoch exactly once.
    epoch: u64,
    /// The in-flight job, cleared when the last worker finishes it.
    job: Option<Job>,
    /// Workers still active on the current job.
    remaining: usize,
    shutdown: bool,
}

struct PoolShared {
    slot: Mutex<JobSlot>,
    /// Workers wait here for a new job (or shutdown).
    job_ready: Condvar,
    /// Submitters wait here for job completion (or a free slot).
    job_done: Condvar,
}

/// Everything one fork-join job shares with the workers, borrowed from
/// the submitting call's stack frame.
struct JobCtx<'a, S, R, F> {
    f: &'a F,
    /// `states[w]` for worker `w < active`; workers never alias.
    states: *mut S,
    /// One slot per task; each task index is written exactly once.
    results: *mut Option<R>,
    queues: &'a [Mutex<VecDeque<usize>>],
    /// Workers with index `>= active` have no queue and do nothing.
    active: usize,
    abort: &'a AtomicBool,
    panic_payload: &'a Mutex<Option<Box<dyn std::any::Any + Send>>>,
    metrics: Option<&'a PoolMetrics>,
}

/// The erased worker entry point for one job. Catches panics itself so
/// the persistent worker thread survives them.
unsafe fn job_entry<S, R, F>(ctx: *const (), w: usize)
where
    S: Send,
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let ctx = &*(ctx as *const JobCtx<'_, S, R, F>);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if w >= ctx.active {
            return;
        }
        // SAFETY: worker `w` is the only reader/writer of `states[w]`,
        // and the submitter holds the `&mut [S]` borrow for the whole
        // job, so no other access exists.
        let state = &mut *ctx.states.add(w);
        while !ctx.abort.load(Ordering::Relaxed) {
            let Some((task, stolen)) = next_task(ctx.queues, w) else {
                if let Some(m) = ctx.metrics {
                    m.idle[w].inc();
                }
                break;
            };
            if let Some(m) = ctx.metrics {
                m.tasks[w].inc();
                if stolen {
                    m.steals[w].inc();
                }
            }
            let r = (ctx.f)(state, task);
            // SAFETY: the queues dispense each task index exactly once,
            // so this slot is written by exactly one worker.
            *ctx.results.add(task) = Some(r);
        }
    }));
    if let Err(e) = outcome {
        ctx.abort.store(true, Ordering::Relaxed);
        ctx.panic_payload.lock().unwrap().get_or_insert(e);
    }
}

fn pool_worker(shared: &PoolShared, w: usize) {
    IN_WORKER.with(|g| g.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut slot = shared.slot.lock().unwrap();
            loop {
                if slot.shutdown {
                    return;
                }
                match slot.job {
                    Some(job) if slot.epoch != seen => {
                        seen = slot.epoch;
                        break job;
                    }
                    _ => slot = shared.job_ready.wait(slot).unwrap(),
                }
            }
        };
        // SAFETY: the submitter blocks until `remaining` reaches zero,
        // which we only signal after this call returns, so the ctx and
        // everything it borrows outlive the dereference. `job_entry`
        // catches panics internally and never unwinds.
        unsafe { (job.call)(job.ctx, w) };
        let mut slot = shared.slot.lock().unwrap();
        slot.remaining -= 1;
        if slot.remaining == 0 {
            slot.job = None;
            shared.job_done.notify_all();
        }
    }
}

/// A persistent fork-join pool: worker threads are created **once**
/// and reused across any number of [`Pool::run`] / [`Pool::run_states`]
/// calls, instead of being re-spawned per fork-join like the scoped
/// [`par_run`] family.
///
/// Scheduling, result ordering, panic propagation, and the
/// nested-scope rejection are identical to [`par_run_states`]; the
/// only difference is thread lifetime. A flow session builds one pool
/// at open time and drives its profiling and every exploration sweep
/// through it.
///
/// `Pool::new(n)` with `n <= 1` spawns no threads at all — every run
/// executes inline on the caller (the serial path).
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    metrics: Option<PoolMetrics>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Spawn a pool with `threads` persistent workers (`<= 1` spawns
    /// none; runs execute inline on the caller).
    pub fn new(threads: usize) -> Pool {
        Pool::new_with_metrics(threads, None)
    }

    /// Like [`Pool::new`], with per-worker scheduling counters
    /// recorded into `metrics`. Passing `None` is exactly `Pool::new`:
    /// the task loop then skips all accounting behind one branch.
    ///
    /// # Panics
    ///
    /// Panics if `metrics` was registered for fewer workers than
    /// `threads`.
    pub fn new_with_metrics(threads: usize, metrics: Option<PoolMetrics>) -> Pool {
        let threads = threads.max(1);
        if let Some(m) = &metrics {
            assert!(
                m.tasks.len() >= threads,
                "PoolMetrics registered for {} workers, pool has {threads}",
                m.tasks.len()
            );
        }
        let shared = Arc::new(PoolShared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = if threads >= 2 {
            (0..threads)
                .map(|w| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || pool_worker(&shared, w))
                })
                .collect()
        } else {
            Vec::new()
        };
        Pool {
            shared,
            handles,
            threads,
            metrics,
        }
    }

    /// Build a pool sized by a [`Parallelism`] setting.
    pub fn with_parallelism(par: Parallelism) -> Pool {
        Pool::new(par.worker_count())
    }

    /// The worker count this pool resolves to (1 = inline execution).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..tasks)` on the pool, returning results in task order.
    ///
    /// # Panics
    ///
    /// Same contract as [`par_run`]: re-raises the first task panic on
    /// the caller, and rejects parallel runs from inside a pool worker.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut states: Vec<()> = vec![(); self.threads.min(tasks.max(1))];
        self.run_states(tasks, &mut states, |(), i| f(i))
    }

    /// Like [`par_run_states`], but on the persistent workers: worker
    /// `w` borrows `states[w]` mutably for every task it executes, and
    /// the states survive between calls.
    ///
    /// # Panics
    ///
    /// Same contract as [`par_run_states`].
    pub fn run_states<S, R, F>(&self, tasks: usize, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let active = self.threads.min(tasks);
        assert!(
            states.len() >= active,
            "Pool::run_states needs one state per worker ({} < {active})",
            states.len()
        );
        if self.handles.is_empty() || active <= 1 {
            // Inline serial path; legal inside a worker.
            let state = &mut states[0];
            return (0..tasks).map(|i| f(state, i)).collect();
        }
        assert!(
            !in_worker(),
            "nested blasys-par parallel scope: a pool task attempted to start \
             another parallel run (use the serial path for inner maps)"
        );

        // Same seeding as `par_run_states`: contiguous chunks per
        // active worker, stealing drains imbalance.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..active)
            .map(|w| {
                let lo = tasks * w / active;
                let hi = tasks * (w + 1) / active;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        let abort = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let mut results: Vec<Option<R>> = (0..tasks).map(|_| None).collect();

        let ctx = JobCtx {
            f: &f,
            states: states.as_mut_ptr(),
            results: results.as_mut_ptr(),
            queues: &queues,
            active,
            abort: &abort,
            panic_payload: &panic_payload,
            metrics: self.metrics.as_ref(),
        };
        if let Some(m) = &self.metrics {
            m.queue_depth.set(tasks as i64);
        }

        {
            let mut slot = self.shared.slot.lock().unwrap();
            // Another thread may be mid-job on this pool; wait for the
            // slot to free before installing ours.
            while slot.job.is_some() {
                slot = self.shared.job_done.wait(slot).unwrap();
            }
            slot.epoch += 1;
            let my_epoch = slot.epoch;
            slot.remaining = self.handles.len();
            slot.job = Some(Job {
                call: job_entry::<S, R, F>,
                ctx: &ctx as *const JobCtx<'_, S, R, F> as *const (),
            });
            self.shared.job_ready.notify_all();
            // Our job is done when the slot is free again at our epoch
            // (a later submitter can only install after ours cleared).
            while !(slot.epoch > my_epoch || slot.job.is_none()) {
                slot = self.shared.job_done.wait(slot).unwrap();
            }
        }

        if let Some(m) = &self.metrics {
            m.queue_depth.set(0);
        }
        if let Some(payload) = panic_payload.lock().unwrap().take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// How a flow phase executes its parallel map: spawn scoped workers
/// for this one call ([`par_run_states`]), or reuse a persistent
/// [`Pool`]. Phases written against `Workers` run identically on
/// either — the pool only changes thread lifetime, never results.
#[derive(Debug, Clone, Copy)]
pub enum Workers<'a> {
    /// Scoped threads spawned and joined inside the call.
    Transient(Parallelism),
    /// A caller-owned persistent pool.
    Pooled(&'a Pool),
}

impl Workers<'_> {
    /// The worker count this execution context resolves to.
    pub fn worker_count(&self) -> usize {
        match self {
            Workers::Transient(p) => p.worker_count(),
            Workers::Pooled(pool) => pool.threads(),
        }
    }

    /// Run `f(0..tasks)`, returning results in task order. Same
    /// contract as [`par_run`].
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        match self {
            Workers::Transient(p) => par_run(*p, tasks, f),
            Workers::Pooled(pool) => pool.run(tasks, f),
        }
    }

    /// Run with caller-owned per-worker states. Same contract as
    /// [`par_run_states`].
    pub fn run_states<S, R, F>(&self, tasks: usize, states: &mut [S], f: F) -> Vec<R>
    where
        S: Send,
        R: Send,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        match self {
            Workers::Transient(p) => par_run_states(*p, tasks, states, f),
            Workers::Pooled(pool) => pool.run_states(tasks, states, f),
        }
    }
}

impl From<Parallelism> for Workers<'static> {
    fn from(par: Parallelism) -> Workers<'static> {
        Workers::Transient(par)
    }
}

/// Pop from our own deque's front, else steal from the back of the
/// fullest victim. The flag is true when the task was stolen.
fn next_task(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(t) = queues[me].lock().unwrap().pop_front() {
        return Some((t, false));
    }
    loop {
        // Snapshot victim loads without holding more than one lock.
        let victim = (0..queues.len())
            .filter(|&v| v != me)
            .map(|v| (queues[v].lock().unwrap().len(), v))
            .max();
        match victim {
            Some((len, v)) if len > 0 => {
                // Re-lock and steal; another thief may have raced us.
                if let Some(t) = queues[v].lock().unwrap().pop_back() {
                    return Some((t, true));
                }
                // Raced: rescan.
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn results_are_in_task_order() {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let got = par_run(par, 33, |i| i * i);
            let want: Vec<usize> = (0..33).map(|i| i * i).collect();
            assert_eq!(got, want, "{par:?}");
        }
    }

    #[test]
    fn zero_tasks_and_more_workers_than_tasks() {
        assert_eq!(
            par_run(Parallelism::Threads(4), 0, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(par_run(Parallelism::Threads(8), 2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn uneven_task_sizes_are_stolen_by_idle_workers() {
        // Task 0 is huge — it blocks (bounded) until every small task
        // has completed, so the test is a handshake rather than a
        // timing race: while its worker is stuck, the other worker
        // must drain both chunks via stealing for task 0 to ever see
        // `done == 15` before the timeout.
        const TASKS: usize = 16;
        let done = AtomicUsize::new(0);
        let ran_by: Mutex<Vec<(usize, ThreadId)>> = Mutex::new(Vec::new());
        let results = par_run(Parallelism::Threads(2), TASKS, |i| {
            ran_by
                .lock()
                .unwrap()
                .push((i, std::thread::current().id()));
            if i == 0 {
                let start = std::time::Instant::now();
                while done.load(Ordering::Relaxed) < TASKS - 1
                    && start.elapsed() < Duration::from_secs(10)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
            } else {
                done.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(results, (0..TASKS).collect::<Vec<_>>());
        let ran_by = ran_by.lock().unwrap();
        let threads: HashSet<ThreadId> = ran_by.iter().map(|&(_, t)| t).collect();
        // On a heavily loaded machine the second worker's thread may
        // only get scheduled after the first drained everything; the
        // distribution claim is meaningful (and deterministic) exactly
        // when both workers ran: a worker's first pop is its own
        // queue's front (task 0 for worker 0), and task 0 cannot
        // return before all small tasks are done — so the big-task
        // worker must have executed no small task at all.
        if threads.len() == 2 {
            let big_thread = ran_by.iter().find(|&&(i, _)| i == 0).unwrap().1;
            let big_thread_small_tasks = ran_by
                .iter()
                .filter(|&&(i, t)| i != 0 && t == big_thread)
                .count();
            assert_eq!(
                big_thread_small_tasks, 0,
                "worker stuck on the big task ran small tasks; stealing \
                 should have drained its queue while it waited"
            );
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the tasks it executed; the total
        // across workers must equal the task count and no state may be
        // created more than once per worker.
        let inits = AtomicUsize::new(0);
        let counts = par_run_with(
            Parallelism::Threads(3),
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert_eq!(counts.len(), 64);
        // `counts[i]` is the per-worker running count at task i; the
        // max per worker sums to 64. Weak but meaningful: at least one
        // worker saw a running count > 1, proving state reuse.
        assert!(counts.iter().any(|&c| c > 1));
        assert!(
            inits.load(Ordering::Relaxed) <= 3,
            "at most one init per worker"
        );
    }

    #[test]
    fn caller_owned_states_survive_across_calls() {
        let mut states = vec![0usize; Parallelism::Threads(3).worker_count()];
        for round in 1..=4 {
            let got = par_run_states(Parallelism::Threads(3), 30, &mut states, |st, i| {
                *st += 1;
                i
            });
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "round {round}");
            // Every task increments exactly one worker's state, and
            // nothing resets them between calls.
            assert_eq!(states.iter().sum::<usize>(), 30 * round);
        }
    }

    #[test]
    fn too_few_states_is_rejected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut states = vec![0usize; 1];
            par_run_states(Parallelism::Threads(4), 16, &mut states, |st, i| {
                *st += 1;
                i
            })
        }));
        assert!(caught.is_err(), "one state cannot serve four workers");
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_run(Parallelism::Threads(2), 8, |i| {
                if i == 5 {
                    panic!("task five exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task five exploded"), "payload: {msg}");
    }

    #[test]
    fn nested_parallel_scopes_are_rejected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_run(Parallelism::Threads(2), 4, |i| {
                // Inner *parallel* map from inside a worker: rejected.
                par_run(Parallelism::Threads(2), 4, |j| i + j)
            })
        }));
        let payload = caught.expect_err("nested parallel scope must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("nested"), "payload: {msg}");
    }

    #[test]
    fn nested_serial_maps_are_allowed() {
        let got = par_run(Parallelism::Threads(2), 4, |i| {
            par_run(Parallelism::Serial, 3, |j| i * 10 + j)
        });
        assert_eq!(got[2], vec![20, 21, 22]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(7).worker_count(), 7);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn pool_matches_scoped_results_across_many_jobs() {
        let pool = Pool::new(3);
        for round in 0..5usize {
            let got = pool.run(37, |i| i * i + round);
            let want: Vec<usize> = (0..37).map(|i| i * i + round).collect();
            assert_eq!(got, want, "round {round}");
        }
        // Zero tasks and more workers than tasks behave like par_run.
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn pool_states_survive_between_jobs() {
        let pool = Pool::new(3);
        let mut states = vec![0usize; 3];
        for round in 1..=4 {
            let got = pool.run_states(30, &mut states, |st, i| {
                *st += 1;
                i
            });
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "round {round}");
            assert_eq!(states.iter().sum::<usize>(), 30 * round);
        }
    }

    #[test]
    fn pool_serial_runs_inline_without_threads() {
        let pool = Pool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.run(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn pool_panics_propagate_and_workers_survive() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 3 {
                    panic!("pool task three exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("pool task three exploded"), "payload: {msg}");
        // The workers survived the panic and serve the next job.
        assert_eq!(pool.run(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_rejects_nested_parallel_runs() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, |i| par_run(Parallelism::Threads(2), 4, move |j| i + j))
        }));
        let payload = caught.expect_err("nested parallel scope must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("nested"), "payload: {msg}");
        // Serial inner maps remain legal on pool workers.
        let got = pool.run(4, |i| par_run(Parallelism::Serial, 3, move |j| i * 10 + j));
        assert_eq!(got[2], vec![20, 21, 22]);
    }

    #[test]
    fn workers_enum_runs_both_paths_identically() {
        let pool = Pool::new(4);
        let want: Vec<usize> = (0..50).map(|i| i * 7).collect();
        for workers in [
            Workers::Transient(Parallelism::Threads(4)),
            Workers::Pooled(&pool),
        ] {
            assert_eq!(workers.run(50, |i| i * 7), want);
            assert!(workers.worker_count() >= 4);
            let mut states = vec![0usize; workers.worker_count().min(50)];
            assert_eq!(workers.run_states(50, &mut states, |_, i| i * 7), want);
        }
    }

    #[test]
    fn pool_metrics_account_every_task() {
        let registry = Registry::new();
        let pool = Pool::new_with_metrics(3, Some(PoolMetrics::register(&registry, 3)));
        for _ in 0..4 {
            let got = pool.run(25, |i| i);
            assert_eq!(got, (0..25).collect::<Vec<_>>());
        }
        let snap = registry.snapshot();
        let executed: u64 = (0..3)
            .map(|w| snap.counter(&format!("pool.worker{w}.tasks")).unwrap())
            .sum();
        assert_eq!(executed, 100, "every task is counted exactly once");
        // The gauge is reset after the last job completes.
        let depth = snap
            .entries
            .iter()
            .find(|e| e.name == "pool.queue_depth")
            .unwrap();
        assert_eq!(depth.value, blasys_obs::SnapshotValue::Gauge(0));
    }

    #[test]
    fn from_env_parses_the_knob() {
        // This is the only test in the crate touching the variable, so
        // there is no cross-test race despite the parallel harness.
        std::env::set_var("BLASYS_THREADS", "4");
        assert_eq!(Parallelism::from_env(), Parallelism::Threads(4));
        std::env::set_var("BLASYS_THREADS", "auto");
        assert_eq!(Parallelism::from_env(), Parallelism::Auto);
        std::env::set_var("BLASYS_THREADS", "1");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
        std::env::set_var("BLASYS_THREADS", "garbage");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
        std::env::remove_var("BLASYS_THREADS");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
    }
}
