//! Scoped work-stealing thread pool for the BLASYS flow.
//!
//! The flow's hot loops — per-window BMF profiling and the per-step
//! candidate sweep of the greedy exploration — are embarrassingly
//! parallel: every task reads a shared immutable model and writes only
//! its own result slot. This crate provides the minimal execution
//! layer they need, built entirely on [`std::thread::scope`] (the
//! build environment has no access to crates.io, so no `rayon`):
//!
//! * [`Parallelism`] — the user-facing knob (`Serial`, `Threads(n)`,
//!   `Auto`), threaded through the `Blasys` builder and readable from
//!   the `BLASYS_THREADS` environment variable;
//! * [`par_run`] / [`par_run_with`] / [`par_run_states`] — fork-join
//!   map over task indices `0..n`, returning results **in task order**
//!   regardless of which worker executed what. `par_run_with` gives
//!   every worker a scratch state reused across all tasks the worker
//!   executes; `par_run_states` borrows caller-owned states so they
//!   also survive *between* fork-joins (the Monte-Carlo probe overlay
//!   reused across every exploration step).
//!
//! # Scheduling
//!
//! Tasks are seeded round-robin-chunked into one deque per worker;
//! a worker pops from the front of its own deque and, when empty,
//! steals from the back of the fullest victim. This keeps mostly
//! cache-friendly contiguous runs per worker while letting short
//! tasks flow to idle workers when task sizes are uneven (BMF windows
//! and probe cones vary wildly in cost).
//!
//! # Panics and nesting
//!
//! A panic in any task aborts the remaining work and is re-raised on
//! the caller's thread with its original payload. Nested *parallel*
//! scopes are rejected (a task spawning another parallel `par_run`
//! would deadlock-prone oversubscribe the pool); running a `Serial`
//! map inside a worker is always allowed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// How much parallelism a flow phase may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded execution on the calling thread (no pool).
    Serial,
    /// A fixed number of worker threads (`Threads(1)` ≡ `Serial`).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// The worker count this setting resolves to on this machine.
    pub fn worker_count(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Parse a user-facing spelling, shared by the `BLASYS_THREADS`
    /// environment variable and the experiment binaries' `--threads`
    /// flag: `auto` or `0` → `Auto`, `1` or anything unparseable →
    /// `Serial`, `n` → `Threads(n)`.
    pub fn parse(s: &str) -> Parallelism {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "0" => Parallelism::Auto,
            s => match s.parse::<usize>() {
                Ok(1) | Err(_) => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
            },
        }
    }

    /// Read the setting from the `BLASYS_THREADS` environment
    /// variable via [`Parallelism::parse`] (unset → `Serial`).
    pub fn from_env() -> Parallelism {
        match std::env::var("BLASYS_THREADS") {
            Ok(s) => Parallelism::parse(&s),
            Err(_) => Parallelism::Serial,
        }
    }
}

/// The default honors `BLASYS_THREADS` (see [`Parallelism::from_env`])
/// so the whole test suite and every flow exercise the parallel path
/// when CI sets the variable. Results are bit-identical either way.
impl Default for Parallelism {
    fn default() -> Parallelism {
        Parallelism::from_env()
    }
}

thread_local! {
    /// Set while the current thread is a pool worker: parallel
    /// scopes must not nest.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the calling thread is currently a pool worker.
pub fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

/// Run `f(0..tasks)` under `par`, returning results in task order.
///
/// # Panics
///
/// Re-raises the first task panic on the calling thread. Panics if
/// called with a parallel setting from inside a pool worker (nested
/// scopes are rejected).
pub fn par_run<R, F>(par: Parallelism, tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_run_with(par, tasks, || (), |(), i| f(i))
}

/// Like [`par_run`], but every worker gets a scratch state built by
/// `init` and passed mutably to each of its tasks. Use this for
/// allocation-heavy per-thread scratch built fresh per call; when the
/// same states should survive *across* calls (e.g. one Monte-Carlo
/// probe overlay per worker reused over every exploration step), build
/// them once and use [`par_run_states`] instead.
///
/// # Panics
///
/// Same contract as [`par_run`].
pub fn par_run_with<S, R, I, F>(par: Parallelism, tasks: usize, init: I, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn() -> S,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = par.worker_count().min(tasks);
    let mut states: Vec<S> = (0..workers).map(|_| init()).collect();
    par_run_states(par, tasks, &mut states, f)
}

/// Like [`par_run`], but worker `w` borrows `states[w]` mutably for
/// every task it executes. The states survive the call, so hot loops
/// can hoist them out and reuse them across many fork-joins — no
/// per-call allocation. `states` must hold at least
/// `min(par.worker_count(), tasks)` entries (extras are unused).
///
/// # Panics
///
/// Same contract as [`par_run`]; additionally panics if `states` has
/// fewer entries than the resolved worker count.
pub fn par_run_states<S, R, F>(par: Parallelism, tasks: usize, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let workers = par.worker_count().min(tasks);
    assert!(
        states.len() >= workers,
        "par_run_states needs one state per worker ({} < {workers})",
        states.len()
    );
    if workers <= 1 {
        // Serial fast path: no scope, no queues; legal inside a worker.
        let state = &mut states[0];
        return (0..tasks).map(|i| f(state, i)).collect();
    }
    assert!(
        !in_worker(),
        "nested blasys-par parallel scope: a pool task attempted to start \
         another parallel par_run (use Parallelism::Serial for inner maps)"
    );

    // One deque per worker, seeded with contiguous chunks so each
    // worker starts on a cache-friendly run of neighboring tasks.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let lo = tasks * w / workers;
            let hi = tasks * (w + 1) / workers;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    let abort = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let mut results: Vec<Option<R>> = (0..tasks).map(|_| None).collect();
    let mut done: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = states[..workers]
            .iter_mut()
            .enumerate()
            .map(|(w, state)| {
                let queues = &queues;
                let abort = &abort;
                let panic_payload = &panic_payload;
                let f = &f;
                scope.spawn(move || {
                    IN_WORKER.with(|g| g.set(true));
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while !abort.load(Ordering::Relaxed) {
                        let Some(task) = next_task(queues, w) else {
                            break;
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(state, task))) {
                            Ok(r) => local.push((task, r)),
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                *panic_payload.lock().unwrap() = Some(e);
                                break;
                            }
                        }
                    }
                    IN_WORKER.with(|g| g.set(false));
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(local) => done.push(local),
                Err(e) => {
                    // Worker died outside `catch_unwind` (shouldn't
                    // happen, but don't lose the payload if it does).
                    abort.store(true, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap();
                    slot.get_or_insert(e);
                }
            }
        }
    });
    if let Some(payload) = panic_payload.lock().unwrap().take() {
        resume_unwind(payload);
    }
    for (i, r) in done.into_iter().flatten() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every task produced a result"))
        .collect()
}

/// Pop from our own deque's front, else steal from the back of the
/// fullest victim.
fn next_task(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(t) = queues[me].lock().unwrap().pop_front() {
        return Some(t);
    }
    loop {
        // Snapshot victim loads without holding more than one lock.
        let victim = (0..queues.len())
            .filter(|&v| v != me)
            .map(|v| (queues[v].lock().unwrap().len(), v))
            .max();
        match victim {
            Some((len, v)) if len > 0 => {
                // Re-lock and steal; another thief may have raced us.
                if let Some(t) = queues[v].lock().unwrap().pop_back() {
                    return Some(t);
                }
                // Raced: rescan.
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn results_are_in_task_order() {
        for par in [
            Parallelism::Serial,
            Parallelism::Threads(2),
            Parallelism::Threads(5),
            Parallelism::Auto,
        ] {
            let got = par_run(par, 33, |i| i * i);
            let want: Vec<usize> = (0..33).map(|i| i * i).collect();
            assert_eq!(got, want, "{par:?}");
        }
    }

    #[test]
    fn zero_tasks_and_more_workers_than_tasks() {
        assert_eq!(
            par_run(Parallelism::Threads(4), 0, |i| i),
            Vec::<usize>::new()
        );
        assert_eq!(par_run(Parallelism::Threads(8), 2, |i| i + 1), vec![1, 2]);
    }

    #[test]
    fn uneven_task_sizes_are_stolen_by_idle_workers() {
        // Task 0 is huge — it blocks (bounded) until every small task
        // has completed, so the test is a handshake rather than a
        // timing race: while its worker is stuck, the other worker
        // must drain both chunks via stealing for task 0 to ever see
        // `done == 15` before the timeout.
        const TASKS: usize = 16;
        let done = AtomicUsize::new(0);
        let ran_by: Mutex<Vec<(usize, ThreadId)>> = Mutex::new(Vec::new());
        let results = par_run(Parallelism::Threads(2), TASKS, |i| {
            ran_by
                .lock()
                .unwrap()
                .push((i, std::thread::current().id()));
            if i == 0 {
                let start = std::time::Instant::now();
                while done.load(Ordering::Relaxed) < TASKS - 1
                    && start.elapsed() < Duration::from_secs(10)
                {
                    std::thread::sleep(Duration::from_millis(1));
                }
            } else {
                done.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(results, (0..TASKS).collect::<Vec<_>>());
        let ran_by = ran_by.lock().unwrap();
        let threads: HashSet<ThreadId> = ran_by.iter().map(|&(_, t)| t).collect();
        // On a heavily loaded machine the second worker's thread may
        // only get scheduled after the first drained everything; the
        // distribution claim is meaningful (and deterministic) exactly
        // when both workers ran: a worker's first pop is its own
        // queue's front (task 0 for worker 0), and task 0 cannot
        // return before all small tasks are done — so the big-task
        // worker must have executed no small task at all.
        if threads.len() == 2 {
            let big_thread = ran_by.iter().find(|&&(i, _)| i == 0).unwrap().1;
            let big_thread_small_tasks = ran_by
                .iter()
                .filter(|&&(i, t)| i != 0 && t == big_thread)
                .count();
            assert_eq!(
                big_thread_small_tasks, 0,
                "worker stuck on the big task ran small tasks; stealing \
                 should have drained its queue while it waited"
            );
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Each worker's state counts the tasks it executed; the total
        // across workers must equal the task count and no state may be
        // created more than once per worker.
        let inits = AtomicUsize::new(0);
        let counts = par_run_with(
            Parallelism::Threads(3),
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |count, _i| {
                *count += 1;
                *count
            },
        );
        assert_eq!(counts.len(), 64);
        // `counts[i]` is the per-worker running count at task i; the
        // max per worker sums to 64. Weak but meaningful: at least one
        // worker saw a running count > 1, proving state reuse.
        assert!(counts.iter().any(|&c| c > 1));
        assert!(
            inits.load(Ordering::Relaxed) <= 3,
            "at most one init per worker"
        );
    }

    #[test]
    fn caller_owned_states_survive_across_calls() {
        let mut states = vec![0usize; Parallelism::Threads(3).worker_count()];
        for round in 1..=4 {
            let got = par_run_states(Parallelism::Threads(3), 30, &mut states, |st, i| {
                *st += 1;
                i
            });
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "round {round}");
            // Every task increments exactly one worker's state, and
            // nothing resets them between calls.
            assert_eq!(states.iter().sum::<usize>(), 30 * round);
        }
    }

    #[test]
    fn too_few_states_is_rejected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut states = vec![0usize; 1];
            par_run_states(Parallelism::Threads(4), 16, &mut states, |st, i| {
                *st += 1;
                i
            })
        }));
        assert!(caught.is_err(), "one state cannot serve four workers");
    }

    #[test]
    fn panics_propagate_with_their_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_run(Parallelism::Threads(2), 8, |i| {
                if i == 5 {
                    panic!("task five exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task five exploded"), "payload: {msg}");
    }

    #[test]
    fn nested_parallel_scopes_are_rejected() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_run(Parallelism::Threads(2), 4, |i| {
                // Inner *parallel* map from inside a worker: rejected.
                par_run(Parallelism::Threads(2), 4, |j| i + j)
            })
        }));
        let payload = caught.expect_err("nested parallel scope must panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("nested"), "payload: {msg}");
    }

    #[test]
    fn nested_serial_maps_are_allowed() {
        let got = par_run(Parallelism::Threads(2), 4, |i| {
            par_run(Parallelism::Serial, 3, |j| i * 10 + j)
        });
        assert_eq!(got[2], vec![20, 21, 22]);
    }

    #[test]
    fn worker_count_resolution() {
        assert_eq!(Parallelism::Serial.worker_count(), 1);
        assert_eq!(Parallelism::Threads(7).worker_count(), 7);
        assert_eq!(Parallelism::Threads(0).worker_count(), 1);
        assert!(Parallelism::Auto.worker_count() >= 1);
    }

    #[test]
    fn from_env_parses_the_knob() {
        // This is the only test in the crate touching the variable, so
        // there is no cross-test race despite the parallel harness.
        std::env::set_var("BLASYS_THREADS", "4");
        assert_eq!(Parallelism::from_env(), Parallelism::Threads(4));
        std::env::set_var("BLASYS_THREADS", "auto");
        assert_eq!(Parallelism::from_env(), Parallelism::Auto);
        std::env::set_var("BLASYS_THREADS", "1");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
        std::env::set_var("BLASYS_THREADS", "garbage");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
        std::env::remove_var("BLASYS_THREADS");
        assert_eq!(Parallelism::from_env(), Parallelism::Serial);
    }
}
