//! Flight recorder: a bounded ring of recent events for post-mortems.
//!
//! Flow-level milestones (stage starts, committed steps, profiled
//! windows) are appended as short text events; when something goes
//! wrong — a panic, a `FlowError` — the last few dozen events give
//! the "what was it doing" context a stack trace cannot. The ring is
//! bounded, so a week-long sweep costs the same memory as a short run.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::{elapsed_micros, thread_id};

/// One recorded flight event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Recording thread (see [`crate::thread_id`]).
    pub tid: u64,
    /// Short human-readable description.
    pub what: String,
}

/// A bounded ring buffer of recent [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Append an event, evicting the oldest past capacity.
    pub fn record(&self, what: impl Into<String>) {
        let ev = FlightEvent {
            ts_us: elapsed_micros(),
            tid: thread_id(),
            what: what.into(),
        };
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Render the retained events as indented text lines
    /// (`  [+1.234s tid 2] explore: step 17`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "  [+{:.3}s tid {}] {}\n",
                e.ts_us as f64 / 1e6,
                e.tid,
                e.what
            ));
        }
        out
    }
}

/// Chain a panic hook that dumps the recorder's recent events to
/// stderr before the previous hook runs. Install at most once per
/// process (each call adds another layer).
pub fn install_panic_dump(recorder: &Arc<FlightRecorder>) {
    let recorder = Arc::clone(recorder);
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let rendered = recorder.render();
        if !rendered.is_empty() {
            eprintln!("flight recorder (most recent events):\n{rendered}");
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let fr = FlightRecorder::new(3);
        for i in 0..7 {
            fr.record(format!("event {i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.what.as_str()).collect::<Vec<_>>(),
            vec!["event 4", "event 5", "event 6"]
        );
    }

    #[test]
    fn render_prefixes_time_and_thread() {
        let fr = FlightRecorder::new(8);
        fr.record("profile: window 1/4");
        let text = fr.render();
        assert!(text.contains("profile: window 1/4"), "{text}");
        assert!(text.trim_start().starts_with("[+"), "{text}");
    }
}
