//! Named counters, gauges, and fixed-bucket histograms.
//!
//! Instruments are plain atomics behind `Arc` handles: registration
//! takes a lock once, after which every update is a single relaxed
//! atomic operation — cheap enough for per-probe accounting in the
//! packed QoR engine. [`Registry::snapshot`] produces a name-sorted,
//! stable [`Snapshot`] that callers can embed in report JSON.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::escape_json;

/// A monotonically increasing `u64`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A free-standing counter (usually obtained via
    /// [`Registry::counter`] instead).
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed level (e.g. a queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A free-standing gauge (usually obtained via [`Registry::gauge`]).
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Replace the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the level to at least `v`.
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed upper-bound buckets plus an overflow bucket.
///
/// `bounds` are inclusive upper bounds in ascending order; a value `v`
/// lands in the first bucket with `v <= bound`, or in the overflow
/// bucket past the last bound. Bucket scans are linear — bounds sets
/// are small (tens at most).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A free-standing histogram (usually obtained via
    /// [`Registry::histogram`]).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, b)| (self.bounds.get(i).copied(), b.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A flat namespace of instruments, looked up (and lazily created) by
/// name. Lookups lock; the returned handles do not.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Instrument)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, inst)) = inner.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Counter(c) => return Arc::clone(c),
                _ => panic!("metric {name:?} is not a counter"),
            }
        }
        let c = Arc::new(Counter::new());
        inner.push((name.to_string(), Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// The gauge registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, inst)) = inner.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric {name:?} is not a gauge"),
            }
        }
        let g = Arc::new(Gauge::new());
        inner.push((name.to_string(), Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// The histogram registered under `name`, created with `bounds` on
    /// first use (later calls ignore `bounds`).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or
    /// on invalid `bounds` (see [`Histogram::new`]).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, inst)) = inner.iter().find(|(n, _)| n == name) {
            match inst {
                Instrument::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric {name:?} is not a histogram"),
            }
        }
        let h = Arc::new(Histogram::new(bounds));
        inner.push((name.to_string(), Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// A stable point-in-time view of every instrument, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<SnapshotEntry> = inner
            .iter()
            .map(|(name, inst)| SnapshotEntry {
                name: name.clone(),
                value: match inst {
                    Instrument::Counter(c) => SnapshotValue::Counter(c.get()),
                    Instrument::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { entries }
    }
}

/// One instrument's value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Registered name.
    pub name: String,
    /// Captured value.
    pub value: SnapshotValue,
}

/// A captured instrument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's level.
    Gauge(i64),
    /// A histogram's buckets.
    Histogram(HistogramSnapshot),
}

/// A captured histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(upper_bound, count)` per bucket; `None` is the overflow
    /// bucket.
    pub buckets: Vec<(Option<u64>, u64)>,
}

/// A point-in-time view of a [`Registry`], sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Captured instruments in name order.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// The value of a counter entry, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|e| e.name == name).and_then(|e| {
            if let SnapshotValue::Counter(v) = e.value {
                Some(v)
            } else {
                None
            }
        })
    }

    /// Compact JSON object keyed by metric name: counters and gauges
    /// as numbers, histograms as
    /// `{"count":..,"sum":..,"buckets":[{"le":bound|null,"count":..}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(&e.name, &mut out);
            out.push_str("\":");
            match &e.value {
                SnapshotValue::Counter(v) => out.push_str(&v.to_string()),
                SnapshotValue::Gauge(v) => out.push_str(&v.to_string()),
                SnapshotValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count, h.sum
                    ));
                    for (j, (bound, count)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        match bound {
                            Some(b) => out.push_str(&format!("{{\"le\":{b},\"count\":{count}}}")),
                            None => out.push_str(&format!("{{\"le\":null,\"count\":{count}}}")),
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("flow.probes");
        c.inc();
        c.add(4);
        let g = r.gauge("pool.queue_depth");
        g.set(7);
        g.add(-2);
        g.set_max(3); // below current 5: no effect
        assert_eq!(r.counter("flow.probes").get(), 5, "same handle by name");
        let snap = r.snapshot();
        assert_eq!(snap.counter("flow.probes"), Some(5));
        assert_eq!(
            snap.entries
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>(),
            vec!["flow.probes", "pool.queue_depth"],
            "snapshot is name-sorted"
        );
        match snap.entries[1].value {
            SnapshotValue::Gauge(v) => assert_eq!(v, 5),
            ref v => panic!("expected gauge, got {v:?}"),
        }
    }

    #[test]
    fn histogram_buckets_values_by_upper_bound() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 500, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 5621);
        assert_eq!(
            s.buckets,
            vec![
                (Some(10), 2),   // 0, 10 (bounds are inclusive)
                (Some(100), 2),  // 11, 100
                (Some(1000), 1), // 500
                (None, 1),       // 5000 overflows
            ]
        );
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 5]);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_is_rejected() {
        let r = Registry::new();
        let _ = r.gauge("x");
        let _ = r.counter("x");
    }

    #[test]
    fn snapshot_json_is_stable_and_parseable_shaped() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.level").set(-3);
        r.histogram("c.hist", &[1, 2]).observe(2);
        let json = r.snapshot().to_json();
        assert_eq!(
            json,
            "{\"a.level\":-3,\"b.count\":2,\"c.hist\":{\"count\":1,\"sum\":2,\
             \"buckets\":[{\"le\":1,\"count\":0},{\"le\":2,\"count\":1},{\"le\":null,\"count\":0}]}}"
        );
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
