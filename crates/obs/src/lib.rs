//! Observability primitives for the BLASYS flow (std-only).
//!
//! Three independent pieces, all hand-rolled on `std` atomics and
//! mutexes (the build environment has no access to crates.io):
//!
//! * [`Tracer`] — nestable timed spans with per-thread attribution,
//!   recorded into sharded buffers and exported as chrome://tracing
//!   "trace event" JSON, so a whole `run`/`sweep`/`batch` opens in
//!   Perfetto or `chrome://tracing`;
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s behind cheap atomic handles, snapshotted to a
//!   stable sorted [`Snapshot`] for JSON embedding;
//! * [`FlightRecorder`] — a bounded ring of recent events, dumpable on
//!   panic or flow errors for post-mortem context.
//!
//! Everything is instance-based: a flow that wants observability
//! creates the handles and threads them through; a flow that does not
//! pays a single `Option` check per hook site and allocates nothing.
//!
//! All timestamps come from one process-wide monotonic clock
//! ([`elapsed`]), so spans, progress lines, and flight events are
//! mutually comparable.

#![warn(missing_docs)]

mod flight;
mod metrics;
mod trace;

pub use flight::{install_panic_dump, FlightEvent, FlightRecorder};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, SnapshotEntry, SnapshotValue,
};
pub use trace::{SpanGuard, TraceEvent, TracePhase, Tracer};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The process-wide monotonic epoch: fixed on first use, shared by the
/// tracer, the flight recorder, and the CLI progress stream.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic time since the process epoch (first clock use).
pub fn elapsed() -> Duration {
    epoch().elapsed()
}

/// [`elapsed`] in whole microseconds — the unit chrome-trace uses.
pub fn elapsed_micros() -> u64 {
    elapsed().as_micros() as u64
}

/// A small dense id for the calling thread, assigned on first use.
/// Used as the `tid` of trace and flight events (stable within the
/// process, unlike the opaque [`std::thread::ThreadId`]).
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Minimal JSON string escaping for event names and labels.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id(), "same thread, same id");
        let there = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, there, "distinct threads get distinct ids");
    }

    #[test]
    fn clock_is_monotone() {
        let a = elapsed_micros();
        let b = elapsed_micros();
        assert!(b >= a);
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
