//! Span tracer with chrome://tracing "trace event" JSON export.
//!
//! Spans are recorded as paired `Begin`/`End` events carrying the
//! recording thread's id and a microsecond timestamp from the shared
//! process clock. Events land in one of a fixed set of sharded
//! buffers keyed by thread id, so concurrent workers almost never
//! contend on the same lock ("lock-free-ish": one uncontended mutex
//! acquisition per event, no allocation beyond the event itself).

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{elapsed_micros, escape_json, thread_id};

/// Number of event-buffer shards; a power of two so the thread-id
/// residue is a cheap mask. Threads map to shards by id, so a worker
/// always appends to "its" shard.
const SHARDS: usize = 16;

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened (`"ph": "B"`).
    Begin,
    /// A span closed (`"ph": "E"`).
    End,
    /// A zero-duration marker (`"ph": "i"`, thread-scoped).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span or marker name.
    pub name: Cow<'static, str>,
    /// Recording thread (see [`crate::thread_id`]).
    pub tid: u64,
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Global record order — total order across threads, used to keep
    /// the export stable when timestamps tie.
    seq: u64,
}

/// Collects spans and instant markers from any number of threads and
/// exports them as chrome-trace JSON.
///
/// Create one per run (the CLI creates one per `--trace-out`
/// invocation), share it by reference or `Arc`, and call
/// [`Tracer::chrome_json`] at the end. Nesting is expressed purely by
/// `Begin`/`End` order per thread, exactly as the chrome trace format
/// expects.
pub struct Tracer {
    shards: Vec<Mutex<Vec<TraceEvent>>>,
    seq: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Tracer {
        Tracer {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
        }
    }

    fn record(&self, name: Cow<'static, str>, phase: TracePhase) {
        let tid = thread_id();
        let ev = TraceEvent {
            name,
            tid,
            ts_us: elapsed_micros(),
            phase,
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
        };
        self.shards[tid as usize % SHARDS].lock().unwrap().push(ev);
    }

    /// Record a span begin. Prefer [`Tracer::span`] where the open and
    /// close share a scope; use explicit begin/end when they live in
    /// separate callbacks (they must still run on the same thread).
    pub fn begin(&self, name: &'static str) {
        self.record(Cow::Borrowed(name), TracePhase::Begin);
    }

    /// Record a span end, closing the most recent open span with the
    /// same thread.
    pub fn end(&self, name: &'static str) {
        self.record(Cow::Borrowed(name), TracePhase::End);
    }

    /// Record a zero-duration, thread-scoped marker.
    pub fn instant(&self, name: &'static str) {
        self.record(Cow::Borrowed(name), TracePhase::Instant);
    }

    /// Open a span closed automatically when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.record(Cow::Borrowed(name), TracePhase::Begin);
        SpanGuard {
            tracer: self,
            name: Cow::Borrowed(name),
            _not_send: std::marker::PhantomData,
        }
    }

    /// Like [`Tracer::span`] with a runtime-built name. The name
    /// allocates, so only call this when tracing is actually on.
    pub fn span_owned(&self, name: String) -> SpanGuard<'_> {
        self.record(Cow::Owned(name.clone()), TracePhase::Begin);
        SpanGuard {
            tracer: self,
            name: Cow::Owned(name),
            _not_send: std::marker::PhantomData,
        }
    }

    /// All events recorded so far, in global record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Export everything as a chrome://tracing "trace event" JSON
    /// document (openable in Perfetto).
    ///
    /// The export is always well-formed: any span still open at export
    /// time (e.g. a flow aborted mid-stage) gets a synthetic closing
    /// event, so `B`/`E` counts balance per thread.
    pub fn chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(64 + events.len() * 64);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, name: &str, tid: u64, ts_us: u64, ph: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_json(name, out);
            out.push_str(&format!(
                "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts_us}"
            ));
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            out.push('}');
        };
        // Per-thread open-span stacks so dangling opens can be closed
        // synthetically at the end.
        let mut open: Vec<(u64, Vec<Cow<'static, str>>)> = Vec::new();
        let mut last_ts = 0u64;
        for e in &events {
            last_ts = last_ts.max(e.ts_us);
            let idx = match open.iter().position(|(tid, _)| *tid == e.tid) {
                Some(i) => i,
                None => {
                    open.push((e.tid, Vec::new()));
                    open.len() - 1
                }
            };
            let stack = &mut open[idx].1;
            match e.phase {
                TracePhase::Begin => {
                    stack.push(e.name.clone());
                    push(&mut out, &e.name, e.tid, e.ts_us, "B");
                }
                TracePhase::End => {
                    // An end without a matching open (recorder attached
                    // mid-span) is dropped rather than unbalancing the
                    // document.
                    if stack.pop().is_some() {
                        push(&mut out, &e.name, e.tid, e.ts_us, "E");
                    }
                }
                TracePhase::Instant => push(&mut out, &e.name, e.tid, e.ts_us, "i"),
            }
        }
        for (tid, stack) in open {
            for name in stack.into_iter().rev() {
                push(&mut out, &name, tid, last_ts, "E");
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Closes its span when dropped. Not `Send`: a span must end on the
/// thread that opened it (chrome-trace pairs `B`/`E` per thread).
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: Cow<'static, str>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer
            .record(std::mem::take(&mut self.name), TracePhase::End);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases(t: &Tracer) -> Vec<(String, TracePhase)> {
        t.events()
            .into_iter()
            .map(|e| (e.name.into_owned(), e.phase))
            .collect()
    }

    #[test]
    fn spans_nest_in_record_order() {
        let t = Tracer::new();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
            }
            t.instant("mark");
        }
        use TracePhase::*;
        assert_eq!(
            phases(&t),
            vec![
                ("outer".into(), Begin),
                ("inner".into(), Begin),
                ("inner".into(), End),
                ("mark".into(), Instant),
                ("outer".into(), End),
            ]
        );
    }

    #[test]
    fn events_carry_the_recording_thread() {
        let t = Tracer::new();
        {
            let _main = t.span("main-side");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = t.span("worker-side");
            });
        });
        let events = t.events();
        assert_eq!(events.len(), 4);
        let main_tid = events[0].tid;
        let worker = events.iter().find(|e| e.name == "worker-side").unwrap();
        assert_ne!(worker.tid, main_tid);
        // Both pairs balance on their own threads.
        for tid in [main_tid, worker.tid] {
            let (b, e) =
                events
                    .iter()
                    .filter(|ev| ev.tid == tid)
                    .fold((0, 0), |(b, e), ev| match ev.phase {
                        TracePhase::Begin => (b + 1, e),
                        TracePhase::End => (b, e + 1),
                        TracePhase::Instant => (b, e),
                    });
            assert_eq!(b, e, "tid {tid}");
        }
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let t = Tracer::new();
        for _ in 0..10 {
            let _g = t.span("tick");
        }
        let events = t.events();
        for w in events.windows(2) {
            assert!(w[1].ts_us >= w[0].ts_us);
        }
    }

    #[test]
    fn export_closes_dangling_spans() {
        let t = Tracer::new();
        t.begin("left-open");
        t.instant("mark");
        let json = t.chrome_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn export_drops_unmatched_ends() {
        let t = Tracer::new();
        t.end("never-opened");
        let json = t.chrome_json();
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
    }

    #[test]
    fn owned_names_are_escaped() {
        let t = Tracer::new();
        let _g = t.span_owned("with \"quotes\"".to_string());
        drop(_g);
        let json = t.chrome_json();
        assert!(json.contains("with \\\"quotes\\\""));
    }
}
