//! Circuit decomposition into k×m-cut subcircuits.
//!
//! BLASYS factorizes *truth tables*, so circuits must first be broken
//! into subcircuits ("clusters") with at most `k` inputs and `m`
//! outputs — the paper uses `k = m = 10` and cites KL-cuts
//! (Martinello et al., DATE 2010). This crate provides:
//!
//! * [`decompose`] — greedy gain-driven
//!   cluster growth over the topological frontier, honoring the
//!   (≤ k inputs, ≤ m outputs) bound;
//! * [`refine`] — a Kernighan–Lin-flavoured
//!   boundary-move pass that shrinks cluster interfaces;
//! * [`window`] — exhaustive truth-table extraction for
//!   a cluster and whole-circuit *substitution* of approximate cluster
//!   implementations (the `Cir(si → T)` operation of Algorithm 1).
//!
//! # Example
//!
//! ```
//! use blasys_logic::builder::{add, input_bus, mark_output_bus};
//! use blasys_logic::Netlist;
//! use blasys_decomp::{decompose, DecompConfig};
//!
//! let mut nl = Netlist::new("add8");
//! let a = input_bus(&mut nl, "a", 8);
//! let b = input_bus(&mut nl, "b", 8);
//! let s = add(&mut nl, &a, &b);
//! mark_output_bus(&mut nl, "s", &s);
//!
//! let part = decompose(&nl, &DecompConfig::default());
//! assert!(part.validate(&nl).is_ok());
//! for c in part.clusters() {
//!     assert!(c.inputs().len() <= 10 && c.outputs().len() <= 10);
//! }
//! ```

pub mod cluster;
pub mod kl;
pub mod window;

pub use cluster::{decompose, Cluster, DecompConfig, Partition};
pub use kl::refine;
pub use window::{cluster_truth_table, extract_cluster_netlist, substitute, ClusterImpl};
