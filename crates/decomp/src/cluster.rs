//! Greedy k×m-cut clustering.
//!
//! Gate nodes are placed one by one: each new cluster is seeded with
//! the lowest-index *ready* node (all fanins already placed) and then
//! grown by repeatedly absorbing the ready candidate with the best
//! affinity gain — fewest new boundary inputs, most internalized
//! outputs — while the `(≤ k inputs, ≤ m outputs)` bound holds. The
//! result is a partition whose cluster sequence is a topological order
//! of the cluster DAG.

use std::collections::HashSet;

use blasys_logic::{GateKind, LogicError, Netlist, NodeId};

/// Limits and knobs of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompConfig {
    /// Maximum boundary inputs per cluster (`k` in the paper; 10).
    pub max_inputs: usize,
    /// Maximum boundary outputs per cluster (`m` in the paper; 10).
    pub max_outputs: usize,
    /// Maximum gates absorbed into one cluster (bounds truth-table
    /// simulation cost; not part of the paper's constraint).
    pub max_gates: usize,
    /// Candidate window: only this many lowest-index ready nodes are
    /// scored per growth step (bounds clustering runtime).
    pub candidate_window: usize,
    /// KL-style refinement passes run after clustering.
    pub refine_passes: usize,
}

impl Default for DecompConfig {
    fn default() -> DecompConfig {
        DecompConfig {
            max_inputs: 10,
            max_outputs: 10,
            max_gates: 64,
            candidate_window: 96,
            refine_passes: 1,
        }
    }
}

/// A subcircuit: a set of gate nodes plus its boundary interface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cluster {
    pub(crate) nodes: Vec<NodeId>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

impl Cluster {
    /// A cluster with only its node set populated; interfaces must be
    /// recomputed before use (refinement-internal helper).
    pub(crate) fn bare(nodes: Vec<NodeId>) -> Cluster {
        Cluster {
            nodes,
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Gate nodes of the cluster, in topological order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Boundary input signals (primary inputs of the netlist or output
    /// nodes of earlier clusters), in a fixed canonical order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Nodes whose values are consumed outside the cluster (or drive
    /// primary outputs), in a fixed canonical order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never produced by [`decompose`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A complete decomposition of a netlist's gates into clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    clusters: Vec<Cluster>,
    /// `cluster_of[node] = Some(cluster index)` for gate nodes.
    cluster_of: Vec<Option<usize>>,
    max_inputs: usize,
    max_outputs: usize,
}

impl Partition {
    /// The clusters, in topological order of the cluster DAG.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (netlist had no gates).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster index containing a gate node, if any.
    pub fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.cluster_of.get(node.index()).copied().flatten()
    }

    /// The `(k, m)` limits the partition was built under.
    pub fn limits(&self) -> (usize, usize) {
        (self.max_inputs, self.max_outputs)
    }

    /// Verify the partition: every gate in exactly one cluster, every
    /// boundary within limits, interfaces consistent with the netlist,
    /// and the cluster sequence topologically ordered.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidNode`] pointing at the first
    /// offending node.
    pub fn validate(&self, nl: &Netlist) -> Result<(), LogicError> {
        let mut seen = vec![false; nl.len()];
        for c in &self.clusters {
            for &n in &c.nodes {
                if seen[n.index()] || !nl.node(n).kind().is_gate() {
                    return Err(LogicError::InvalidNode { index: n.index() });
                }
                seen[n.index()] = true;
            }
            if c.inputs.len() > self.max_inputs || c.outputs.len() > self.max_outputs {
                return Err(LogicError::InvalidNode {
                    index: c.nodes.first().map(|n| n.index()).unwrap_or(0),
                });
            }
        }
        for (id, node) in nl.iter() {
            if node.kind().is_gate() && !seen[id.index()] {
                return Err(LogicError::InvalidNode { index: id.index() });
            }
        }
        // Topological consistency: every fanin of a cluster node must
        // be a PI, a constant, a member, or in an earlier cluster.
        for (ci, c) in self.clusters.iter().enumerate() {
            let members: HashSet<NodeId> = c.nodes.iter().copied().collect();
            for &n in &c.nodes {
                for f in nl.node(n).fanins() {
                    let fk = nl.node(f).kind();
                    if fk == GateKind::Input || !fk.is_gate() || members.contains(&f) {
                        continue;
                    }
                    match self.cluster_of(f) {
                        Some(cf) if cf < ci => {}
                        _ => return Err(LogicError::InvalidNode { index: f.index() }),
                    }
                }
            }
        }
        Ok(())
    }

    /// Recompute all cluster interfaces from the current placement
    /// (used after refinement moves).
    pub fn recompute_interfaces(&mut self, nl: &Netlist) {
        for ci in 0..self.clusters.len() {
            self.recompute_one(nl, ci);
        }
    }

    /// Recompute a single cluster's interface.
    pub fn recompute_one(&mut self, nl: &Netlist, ci: usize) {
        let nodes = std::mem::take(&mut self.clusters[ci]).nodes;
        self.clusters[ci] = make_cluster(nl, nodes, ci, &self.cluster_of);
    }

    pub(crate) fn cluster_of_mut(&mut self) -> &mut Vec<Option<usize>> {
        &mut self.cluster_of
    }

    pub(crate) fn clusters_mut(&mut self) -> &mut Vec<Cluster> {
        &mut self.clusters
    }
}

/// Compute a cluster's canonical interface given its member set.
fn make_cluster(
    nl: &Netlist,
    mut nodes: Vec<NodeId>,
    cluster_index: usize,
    cluster_of: &[Option<usize>],
) -> Cluster {
    nodes.sort_unstable();
    let members: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut inputs: Vec<NodeId> = Vec::new();
    let mut seen_in: HashSet<NodeId> = HashSet::new();
    for &n in &nodes {
        for f in nl.node(n).fanins() {
            let fk = nl.node(f).kind();
            if members.contains(&f) || matches!(fk, GateKind::Const0 | GateKind::Const1) {
                continue;
            }
            if seen_in.insert(f) {
                inputs.push(f);
            }
        }
    }
    inputs.sort_unstable();

    // Outputs: members used outside the cluster or driving POs.
    let mut is_output = vec![false; nl.len()];
    for (id, node) in nl.iter() {
        if !node.kind().is_gate() {
            continue;
        }
        let user_cluster = cluster_of[id.index()];
        for f in node.fanins() {
            if members.contains(&f) && user_cluster != Some(cluster_index) {
                is_output[f.index()] = true;
            }
        }
    }
    for o in nl.outputs() {
        if members.contains(&o.node()) {
            is_output[o.node().index()] = true;
        }
    }
    let outputs: Vec<NodeId> = nodes
        .iter()
        .copied()
        .filter(|n| is_output[n.index()])
        .collect();
    Cluster {
        nodes,
        inputs,
        outputs,
    }
}

/// Decompose a netlist into k×m-cut clusters.
///
/// Runs greedy growth followed by `cfg.refine_passes` rounds of
/// KL-style boundary refinement.
pub fn decompose(nl: &Netlist, cfg: &DecompConfig) -> Partition {
    let fanout = nl.fanout_counts();
    let is_po: Vec<bool> = {
        let mut v = vec![false; nl.len()];
        for o in nl.outputs() {
            v[o.node().index()] = true;
        }
        v
    };

    let gate_nodes: Vec<NodeId> = nl
        .iter()
        .filter(|(_, n)| n.kind().is_gate())
        .map(|(id, _)| id)
        .collect();
    let mut placed = vec![false; nl.len()];
    // Inputs and constants count as placed producers.
    for (id, node) in nl.iter() {
        if !node.kind().is_gate() {
            placed[id.index()] = true;
        }
    }
    let mut cluster_of: Vec<Option<usize>> = vec![None; nl.len()];
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut remaining: usize = gate_nodes.len();
    // Ready = unplaced gate with all fanins placed; refreshed lazily.
    let mut ready: Vec<NodeId> = gate_nodes
        .iter()
        .copied()
        .filter(|g| nl.node(*g).fanins().all(|f| placed[f.index()]))
        .collect();

    while remaining > 0 {
        ready.sort_unstable();
        ready.dedup();
        ready.retain(|n| !placed[n.index()]);
        let seed = ready[0];
        let ci = clusters.len();

        // Growth state.
        let mut members: HashSet<NodeId> = HashSet::new();
        let mut member_list: Vec<NodeId> = Vec::new();
        let mut input_set: HashSet<NodeId> = HashSet::new();
        let mut uses_inside: Vec<u32> = Vec::new(); // parallel to member_list
        let mut member_pos: std::collections::HashMap<NodeId, usize> = Default::default();

        let add_node =
            |n: NodeId,
             members: &mut HashSet<NodeId>,
             member_list: &mut Vec<NodeId>,
             input_set: &mut HashSet<NodeId>,
             uses_inside: &mut Vec<u32>,
             member_pos: &mut std::collections::HashMap<NodeId, usize>| {
                for f in nl.node(n).fanins() {
                    let fk = nl.node(f).kind();
                    if members.contains(&f) {
                        uses_inside[member_pos[&f]] += 1;
                    } else if !matches!(fk, GateKind::Const0 | GateKind::Const1) {
                        input_set.insert(f);
                    }
                }
                member_pos.insert(n, member_list.len());
                member_list.push(n);
                uses_inside.push(0);
                members.insert(n);
            };

        add_node(
            seed,
            &mut members,
            &mut member_list,
            &mut input_set,
            &mut uses_inside,
            &mut member_pos,
        );
        placed[seed.index()] = true;
        remaining -= 1;

        // Helper: current output count.
        let count_outputs = |member_list: &[NodeId], uses_inside: &[u32]| {
            member_list
                .iter()
                .zip(uses_inside)
                .filter(|(&x, &u)| is_po[x.index()] || fanout[x.index()] > u)
                .count()
        };

        loop {
            if member_list.len() >= cfg.max_gates {
                break;
            }
            // Recompute readiness over the candidate window (lazy; the
            // window bound keeps this linear in practice).
            let cands: Vec<NodeId> = gate_nodes
                .iter()
                .copied()
                .filter(|g| !placed[g.index()] && nl.node(*g).fanins().all(|f| placed[f.index()]))
                .take(cfg.candidate_window)
                .collect();
            if cands.is_empty() {
                break;
            }
            // Score each candidate.
            let cur_outputs = count_outputs(&member_list, &uses_inside);
            let mut best: Option<(i64, NodeId)> = None;
            for &n in &cands {
                let mut added_inputs = 0usize;
                let mut shared = 0i64;
                let mut internalized = 0usize;
                for f in nl.node(n).fanins() {
                    let fk = nl.node(f).kind();
                    if members.contains(&f) {
                        // Does adding n internalize f's last external use?
                        let u = uses_inside[member_pos[&f]];
                        let extra = nl.node(n).fanins().filter(|&g| g == f).count() as u32;
                        if !is_po[f.index()] && fanout[f.index()] == u + extra {
                            internalized += 1;
                        }
                        shared += 1;
                    } else if matches!(fk, GateKind::Const0 | GateKind::Const1) {
                        continue;
                    } else if input_set.contains(&f) {
                        shared += 1;
                    } else {
                        added_inputs += 1;
                    }
                }
                let n_is_output = is_po[n.index()] || fanout[n.index()] > 0;
                let new_inputs = input_set.len() + added_inputs;
                let new_outputs = cur_outputs - internalized + usize::from(n_is_output);
                if new_inputs > cfg.max_inputs || new_outputs > cfg.max_outputs {
                    continue;
                }
                let gain = shared * 2 + internalized as i64 * 3
                    - added_inputs as i64 * 2
                    - (n.index() as i64 >> 20); // stable small tie-break
                if best.is_none_or(|(g, b)| gain > g || (gain == g && n < b)) {
                    best = Some((gain, n));
                }
            }
            let Some((_, pick)) = best else { break };
            add_node(
                pick,
                &mut members,
                &mut member_list,
                &mut input_set,
                &mut uses_inside,
                &mut member_pos,
            );
            placed[pick.index()] = true;
            remaining -= 1;
        }

        for &n in &member_list {
            cluster_of[n.index()] = Some(ci);
        }
        clusters.push(member_list);
        // Refresh global ready vector cheaply.
        ready = gate_nodes
            .iter()
            .copied()
            .filter(|g| !placed[g.index()] && nl.node(*g).fanins().all(|f| placed[f.index()]))
            .collect();
        if ready.is_empty() && remaining > 0 {
            unreachable!("topological order guarantees progress");
        }
    }

    let built: Vec<Cluster> = clusters
        .into_iter()
        .enumerate()
        .map(|(ci, nodes)| make_cluster(nl, nodes, ci, &cluster_of))
        .collect();
    let mut part = Partition {
        clusters: built,
        cluster_of,
        max_inputs: cfg.max_inputs,
        max_outputs: cfg.max_outputs,
    };
    for _ in 0..cfg.refine_passes {
        if !crate::kl::refine(nl, &mut part) {
            break;
        }
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use blasys_logic::builder::{add, input_bus, mark_output_bus, mul};
    use blasys_logic::Netlist;

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn partition_covers_all_gates_once() {
        let nl = adder(16);
        let part = decompose(&nl, &DecompConfig::default());
        assert!(part.validate(&nl).is_ok());
        let total: usize = part.clusters().iter().map(Cluster::len).sum();
        assert_eq!(total, nl.gate_count());
    }

    #[test]
    fn limits_respected() {
        let nl = adder(32);
        for (k, m) in [(10, 10), (6, 6), (4, 4)] {
            let cfg = DecompConfig {
                max_inputs: k,
                max_outputs: m,
                ..DecompConfig::default()
            };
            let part = decompose(&nl, &cfg);
            assert!(part.validate(&nl).is_ok());
            for c in part.clusters() {
                assert!(c.inputs().len() <= k, "inputs {} > {k}", c.inputs().len());
                assert!(
                    c.outputs().len() <= m,
                    "outputs {} > {m}",
                    c.outputs().len()
                );
                assert!(!c.is_empty());
            }
        }
    }

    #[test]
    fn multiplier_decomposes() {
        let mut nl = Netlist::new("mul");
        let a = input_bus(&mut nl, "a", 6);
        let b = input_bus(&mut nl, "b", 6);
        let p = mul(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "p", &p);
        let part = decompose(&nl, &DecompConfig::default());
        assert!(part.validate(&nl).is_ok());
        assert!(part.len() >= 2, "6x6 multiplier needs several clusters");
    }

    #[test]
    fn cluster_of_is_consistent() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        for (ci, c) in part.clusters().iter().enumerate() {
            for &n in c.nodes() {
                assert_eq!(part.cluster_of(n), Some(ci));
            }
        }
    }

    #[test]
    fn tiny_netlist_single_cluster() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.and(a, b);
        let h = nl.xor(g, a);
        nl.mark_output("z", h);
        let part = decompose(&nl, &DecompConfig::default());
        assert_eq!(part.len(), 1);
        let c = &part.clusters()[0];
        assert_eq!(c.len(), 2);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
    }

    #[test]
    fn gateless_netlist_is_empty_partition() {
        let mut nl = Netlist::new("wire");
        let a = nl.add_input("a");
        nl.mark_output("z", a);
        let part = decompose(&nl, &DecompConfig::default());
        assert!(part.is_empty());
        assert!(part.validate(&nl).is_ok());
    }

    #[test]
    fn max_gates_bounds_cluster_size() {
        let nl = adder(32);
        let cfg = DecompConfig {
            max_gates: 8,
            ..DecompConfig::default()
        };
        let part = decompose(&nl, &cfg);
        assert!(part.validate(&nl).is_ok());
        // Refinement may merge a node or two, allow slack.
        for c in part.clusters() {
            assert!(c.len() <= 10, "cluster of {} gates", c.len());
        }
    }
}
