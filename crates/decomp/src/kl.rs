//! Kernighan–Lin-flavoured boundary refinement.
//!
//! After greedy clustering, single nodes are moved between clusters
//! when the move shrinks the total interface size (inputs + outputs
//! summed over clusters) without violating the k×m bound or the
//! topological order of the cluster sequence. This mirrors the role of
//! the KL pass in the KL-cut algorithm the paper cites.

use std::collections::HashSet;

use blasys_logic::{Netlist, NodeId};

use crate::cluster::Partition;

/// Total interface cost of a partition (sum of boundary sizes).
fn interface_cost(part: &Partition) -> usize {
    part.clusters()
        .iter()
        .map(|c| c.inputs().len() + c.outputs().len())
        .sum()
}

/// One refinement pass. Returns `true` if any move was applied.
///
/// Legality of moving node `n` from cluster `a` to cluster `b`:
/// * `b > a`: every user of `n` must live in cluster `b` or later (or
///   be a primary output — those forbid the move, the value would be
///   produced too late only if users were earlier; POs are fine);
/// * `b < a`: every fanin of `n` must be produced in cluster `b` or
///   earlier (primary inputs and constants always qualify).
///
/// A move is kept when it strictly reduces the global interface cost
/// while both affected clusters stay within the k×m limits.
pub fn refine(nl: &Netlist, part: &mut Partition) -> bool {
    let (max_in, max_out) = part.limits();
    let mut users: Vec<Vec<NodeId>> = vec![Vec::new(); nl.len()];
    for (id, node) in nl.iter() {
        for f in node.fanins() {
            users[f.index()].push(id);
        }
    }
    let mut changed = false;
    let n_clusters = part.len();
    if n_clusters < 2 {
        return false;
    }
    let mut cost = interface_cost(part);

    // Candidate moves: boundary nodes to the neighbouring cluster that
    // already consumes/produces most of their connections.
    for ci in 0..n_clusters {
        let candidates: Vec<NodeId> = part.clusters()[ci].outputs().to_vec();
        for n in candidates {
            if part.cluster_of(n) != Some(ci) {
                continue; // moved away by an earlier iteration
            }
            // Try moving n to the cluster holding the majority of its
            // users (forward move) or of its fanins (backward move).
            let mut tally: std::collections::HashMap<usize, usize> = Default::default();
            for &u in &users[n.index()] {
                if let Some(cu) = part.cluster_of(u) {
                    if cu != ci {
                        *tally.entry(cu).or_default() += 1;
                    }
                }
            }
            for f in nl.node(n).fanins() {
                if let Some(cf) = part.cluster_of(f) {
                    if cf != ci {
                        *tally.entry(cf).or_default() += 1;
                    }
                }
            }
            let Some((&target, _)) = tally.iter().max_by_key(|(_, &v)| v) else {
                continue;
            };
            if !move_is_legal(nl, part, &users, n, ci, target) {
                continue;
            }
            // Apply tentatively, measure, roll back if not better.
            apply_move(nl, part, n, ci, target);
            let legal_sizes = {
                let a = &part.clusters()[ci];
                let b = &part.clusters()[target];
                a.inputs().len() <= max_in
                    && a.outputs().len() <= max_out
                    && b.inputs().len() <= max_in
                    && b.outputs().len() <= max_out
            };
            let new_cost = interface_cost(part);
            if legal_sizes && new_cost < cost {
                cost = new_cost;
                changed = true;
            } else {
                apply_move(nl, part, n, target, ci); // roll back
            }
        }
    }
    changed
}

/// Check the topological legality of moving `n` from cluster `from` to
/// cluster `to`.
fn move_is_legal(
    nl: &Netlist,
    part: &Partition,
    users: &[Vec<NodeId>],
    n: NodeId,
    from: usize,
    to: usize,
) -> bool {
    if from == to || part.clusters()[from].len() <= 1 {
        return false;
    }
    if to > from {
        // Every gate user of n must be in cluster `to` or later.
        for &u in &users[n.index()] {
            match part.cluster_of(u) {
                Some(cu) if cu >= to => {}
                Some(_) => return false,
                None => {} // user is not a gate (impossible) — ignore
            }
        }
        // If n drives a PO its value still exists (cluster `to` output).
        true
    } else {
        // Every fanin of n must be produced at cluster `to` or earlier
        // (PIs/constants always are).
        for f in nl.node(n).fanins() {
            if let Some(cf) = part.cluster_of(f) {
                if cf > to {
                    return false;
                }
            }
        }
        // Users of n in clusters < `to`? Users are always after n's
        // cluster, and moving earlier only helps. But users inside
        // `from` must still be able to see n — they can, `to < from`.
        true
    }
}

/// Move `n` between clusters and recompute the two interfaces.
fn apply_move(nl: &Netlist, part: &mut Partition, n: NodeId, from: usize, to: usize) {
    {
        let clusters = part.clusters_mut();
        let pos = clusters[from]
            .nodes()
            .iter()
            .position(|&x| x == n)
            .expect("node must be in source cluster");
        let mut from_nodes = clusters[from].nodes().to_vec();
        from_nodes.remove(pos);
        let mut to_nodes = clusters[to].nodes().to_vec();
        to_nodes.push(n);
        set_cluster_nodes(clusters, from, from_nodes);
        set_cluster_nodes(clusters, to, to_nodes);
    }
    part.cluster_of_mut()[n.index()] = Some(to);
    // Only the two touched clusters can change interface (other
    // clusters' boundaries reference n as an external signal either way).
    part.recompute_one(nl, from);
    part.recompute_one(nl, to);
}

fn set_cluster_nodes(clusters: &mut [crate::cluster::Cluster], idx: usize, mut nodes: Vec<NodeId>) {
    // Only the node set is stashed here; the caller recomputes the
    // interface immediately afterwards.
    nodes.sort_unstable();
    clusters[idx] = crate::cluster::Cluster::bare(nodes);
}

/// Sanity helper used in tests: node sets across clusters are disjoint.
pub fn clusters_disjoint(part: &Partition) -> bool {
    let mut seen: HashSet<NodeId> = HashSet::new();
    for c in part.clusters() {
        for &n in c.nodes() {
            if !seen.insert(n) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus, mul};
    use blasys_logic::Netlist;

    fn mult(width: usize) -> Netlist {
        let mut nl = Netlist::new("mul");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let p = mul(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "p", &p);
        nl
    }

    #[test]
    fn refinement_preserves_validity() {
        let nl = mult(5);
        let cfg = DecompConfig {
            refine_passes: 0,
            ..DecompConfig::default()
        };
        let mut part = decompose(&nl, &cfg);
        let before = interface_cost(&part);
        for _ in 0..3 {
            if !refine(&nl, &mut part) {
                break;
            }
        }
        assert!(part.validate(&nl).is_ok());
        assert!(clusters_disjoint(&part));
        assert!(interface_cost(&part) <= before);
    }

    #[test]
    fn refinement_never_increases_cost() {
        let mut nl = Netlist::new("chain");
        let a = input_bus(&mut nl, "a", 12);
        let b = input_bus(&mut nl, "b", 12);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        let cfg = DecompConfig {
            max_inputs: 6,
            max_outputs: 6,
            refine_passes: 0,
            ..DecompConfig::default()
        };
        let mut part = decompose(&nl, &cfg);
        let before = interface_cost(&part);
        refine(&nl, &mut part);
        assert!(interface_cost(&part) <= before);
        assert!(part.validate(&nl).is_ok());
    }
}
