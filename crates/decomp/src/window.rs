//! Cluster windows: truth-table extraction and whole-circuit
//! substitution.
//!
//! `cluster_truth_table` materializes the `2^k × m` matrix `M` that
//! BLASYS hands to the factorization algorithm (Algorithm 1, line 4).
//! `substitute` rebuilds the full netlist with selected clusters
//! replaced by alternative implementations — the `Cir(si → T_{si,fi})`
//! operation used throughout the design-space exploration.

use std::collections::HashMap;

use blasys_logic::{GateKind, Netlist, NodeId, TruthTable};

use crate::cluster::{Cluster, Partition};

/// Exhaustively evaluate a cluster into its truth table.
///
/// Row bit `i` drives `cluster.inputs()[i]`; column `o` is
/// `cluster.outputs()[o]`. Constants inside the cluster are honored.
///
/// # Panics
///
/// Panics if the cluster has more than 26 inputs (never happens for
/// k×m-cut partitions with the paper's `k = 10`).
pub fn cluster_truth_table(nl: &Netlist, cluster: &Cluster) -> TruthTable {
    let k = cluster.inputs().len();
    assert!(k <= 26, "cluster too wide for exhaustive enumeration");
    let m = cluster.outputs().len();
    let rows = 1usize << k;
    let blocks = rows.div_ceil(64);

    let mut tt = TruthTable::zeroed(k, m);
    // Per-block evaluation of only the cluster's nodes.
    let mut values: HashMap<NodeId, u64> = HashMap::with_capacity(cluster.len() + k);
    for block in 0..blocks {
        values.clear();
        for (i, &pi) in cluster.inputs().iter().enumerate() {
            values.insert(pi, pattern_word(i, block));
        }
        for &n in cluster.nodes() {
            let node = nl.node(n);
            let fetch = |values: &HashMap<NodeId, u64>, f: NodeId| -> u64 {
                if let Some(&v) = values.get(&f) {
                    return v;
                }
                match nl.node(f).kind() {
                    GateKind::Const0 => 0,
                    GateKind::Const1 => !0,
                    _ => panic!("fanin {f} not available in cluster window"),
                }
            };
            let v = match node.kind() {
                GateKind::Const0 => 0,
                GateKind::Const1 => !0,
                k => {
                    let a = fetch(&values, node.fanin0().expect("gate fanin"));
                    let b = node.fanin1().map(|f| fetch(&values, f)).unwrap_or(0);
                    k.eval_words(a, b)
                }
            };
            values.insert(n, v);
        }
        let valid = (rows - block * 64).min(64);
        let mask = if valid == 64 {
            !0u64
        } else {
            (1u64 << valid) - 1
        };
        for (o, &out_node) in cluster.outputs().iter().enumerate() {
            let w = values[&out_node] & mask;
            let mut bits = w;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                tt.set(block * 64 + lane, o, true);
            }
        }
    }
    tt
}

fn pattern_word(i: usize, block: usize) -> u64 {
    const LOW: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    if i < 6 {
        LOW[i]
    } else if block >> (i - 6) & 1 == 1 {
        !0
    } else {
        0
    }
}

/// Extract a cluster as a standalone netlist: primary inputs are the
/// boundary inputs (in `cluster.inputs()` order, named `x0..`), primary
/// outputs the boundary outputs (named `y0..`).
///
/// The gates are copied verbatim, so the result is the *reference
/// implementation* of the window — typically far smaller than
/// resynthesizing the window's truth table from scratch.
pub fn extract_cluster_netlist(nl: &Netlist, cluster: &Cluster, name: &str) -> Netlist {
    let mut out = Netlist::new(name.to_string());
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    for (i, &b) in cluster.inputs().iter().enumerate() {
        map.insert(b, out.add_input(format!("x{i}")));
    }
    for &n in cluster.nodes() {
        let node = nl.node(n);
        let get =
            |map: &HashMap<NodeId, NodeId>, out: &mut Netlist, f: NodeId| match nl.node(f).kind() {
                GateKind::Const0 => out.constant(false),
                GateKind::Const1 => out.constant(true),
                _ => map[&f],
            };
        let new = match node.kind() {
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            k if k.arity() == 1 => {
                let a = get(&map, &mut out, node.fanin0().unwrap());
                out.gate(k, a, a)
            }
            k => {
                let a = get(&map, &mut out, node.fanin0().unwrap());
                let b = get(&map, &mut out, node.fanin1().unwrap());
                out.gate(k, a, b)
            }
        };
        map.insert(n, new);
    }
    for (o, &n) in cluster.outputs().iter().enumerate() {
        out.mark_output(format!("y{o}"), map[&n]);
    }
    out
}

/// How to realize one cluster when rebuilding the circuit.
#[derive(Debug, Clone)]
pub enum ClusterImpl {
    /// Keep the original gates.
    Keep,
    /// Replace with a netlist whose primary inputs correspond
    /// positionally to `cluster.inputs()` and outputs to
    /// `cluster.outputs()`.
    Replace(Netlist),
}

/// Rebuild the circuit with each cluster realized per `impls`.
///
/// Signals produced by replaced clusters feed downstream clusters and
/// primary outputs exactly as the original nodes did, so the result is
/// a drop-in (possibly approximate) variant of `nl`.
///
/// # Panics
///
/// Panics if `impls.len() != partition.len()` or a replacement's
/// interface does not match its cluster's.
pub fn substitute(nl: &Netlist, partition: &Partition, impls: &[ClusterImpl]) -> Netlist {
    assert_eq!(
        impls.len(),
        partition.len(),
        "one implementation choice per cluster"
    );
    let mut out = Netlist::new(nl.name().to_string());
    // map[old node] = new node carrying the same signal.
    let mut map: Vec<Option<NodeId>> = vec![None; nl.len()];
    for (idx, &pi) in nl.inputs().iter().enumerate() {
        map[pi.index()] = Some(out.add_input(nl.input_name(idx).to_string()));
    }
    let resolve = |map: &[Option<NodeId>], out: &mut Netlist, f: NodeId| -> NodeId {
        match nl.node(f).kind() {
            GateKind::Const0 => out.constant(false),
            GateKind::Const1 => out.constant(true),
            _ => map[f.index()].expect("signal not yet materialized"),
        }
    };

    for (cluster, impl_choice) in partition.clusters().iter().zip(impls) {
        match impl_choice {
            ClusterImpl::Keep => {
                for &n in cluster.nodes() {
                    let node = nl.node(n);
                    let a = node
                        .fanin0()
                        .map(|f| resolve(&map, &mut out, f))
                        .unwrap_or(NodeId::from_index(0));
                    let b = node
                        .fanin1()
                        .map(|f| resolve(&map, &mut out, f))
                        .unwrap_or(a);
                    let new = match node.kind() {
                        GateKind::Const0 => out.constant(false),
                        GateKind::Const1 => out.constant(true),
                        k if k.arity() == 1 => out.gate(k, a, a),
                        k => out.gate(k, a, b),
                    };
                    map[n.index()] = Some(new);
                }
            }
            ClusterImpl::Replace(sub) => {
                assert_eq!(
                    sub.num_inputs(),
                    cluster.inputs().len(),
                    "replacement input arity mismatch"
                );
                assert_eq!(
                    sub.num_outputs(),
                    cluster.outputs().len(),
                    "replacement output arity mismatch"
                );
                // Inline `sub` into `out`.
                let mut sub_map: Vec<Option<NodeId>> = vec![None; sub.len()];
                for (i, &spi) in sub.inputs().iter().enumerate() {
                    let boundary = cluster.inputs()[i];
                    sub_map[spi.index()] = Some(resolve(&map, &mut out, boundary));
                }
                for (sid, snode) in sub.iter() {
                    if snode.kind() == GateKind::Input {
                        continue;
                    }
                    let a = snode
                        .fanin0()
                        .map(|f| sub_map[f.index()].expect("sub topo order"));
                    let b = snode
                        .fanin1()
                        .map(|f| sub_map[f.index()].expect("sub topo order"));
                    let new = match snode.kind() {
                        GateKind::Const0 => out.constant(false),
                        GateKind::Const1 => out.constant(true),
                        k if k.arity() == 1 => {
                            let a = a.unwrap();
                            out.gate(k, a, a)
                        }
                        k => out.gate(k, a.unwrap(), b.unwrap()),
                    };
                    sub_map[sid.index()] = Some(new);
                }
                for (o, &orig) in cluster.outputs().iter().enumerate() {
                    let driver = sub.outputs()[o].node();
                    map[orig.index()] = Some(sub_map[driver.index()].expect("driver mapped"));
                }
            }
        }
    }

    for po in nl.outputs() {
        let new = resolve(&map, &mut out, po.node());
        out.mark_output(po.name().to_string(), new);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{decompose, DecompConfig};
    use blasys_logic::builder::{add, input_bus, mark_output_bus};
    use blasys_logic::equiv::{check_equiv, EquivConfig};

    fn adder(width: usize) -> Netlist {
        let mut nl = Netlist::new("add");
        let a = input_bus(&mut nl, "a", width);
        let b = input_bus(&mut nl, "b", width);
        let s = add(&mut nl, &a, &b);
        mark_output_bus(&mut nl, "s", &s);
        nl
    }

    #[test]
    fn window_table_matches_direct_simulation() {
        let nl = adder(6);
        let part = decompose(&nl, &DecompConfig::default());
        for cluster in part.clusters() {
            let tt = cluster_truth_table(&nl, cluster);
            assert_eq!(tt.num_inputs(), cluster.inputs().len());
            assert_eq!(tt.num_outputs(), cluster.outputs().len());
            // Spot-check a handful of rows against full-circuit logic by
            // evaluating the cluster nodes scalar-wise.
            for row in [0usize, 1, 3, (1 << tt.num_inputs()) - 1] {
                let mut vals: HashMap<NodeId, bool> = HashMap::new();
                for (i, &pi) in cluster.inputs().iter().enumerate() {
                    vals.insert(pi, row >> i & 1 == 1);
                }
                for &n in cluster.nodes() {
                    let node = nl.node(n);
                    let get = |vals: &HashMap<NodeId, bool>, f: NodeId| match nl.node(f).kind() {
                        GateKind::Const0 => false,
                        GateKind::Const1 => true,
                        _ => vals[&f],
                    };
                    let a = node.fanin0().map(|f| get(&vals, f)).unwrap_or(false);
                    let b = node.fanin1().map(|f| get(&vals, f)).unwrap_or(false);
                    vals.insert(n, node.kind().eval(a, b));
                }
                for (o, &on) in cluster.outputs().iter().enumerate() {
                    assert_eq!(tt.get(row, o), vals[&on], "row {row} out {o}");
                }
            }
        }
    }

    #[test]
    fn keep_everything_is_equivalent() {
        let nl = adder(8);
        let part = decompose(&nl, &DecompConfig::default());
        let impls = vec![ClusterImpl::Keep; part.len()];
        let rebuilt = substitute(&nl, &part, &impls);
        assert!(check_equiv(&nl, &rebuilt, &EquivConfig::default()).is_equal());
    }

    #[test]
    fn replacing_with_exact_resynthesis_is_equivalent() {
        // Build each cluster's truth table and replace it with a naive
        // two-level netlist generated straight from the table.
        let nl = adder(5);
        let part = decompose(&nl, &DecompConfig::default());
        let impls: Vec<ClusterImpl> = part
            .clusters()
            .iter()
            .map(|c| {
                let tt = cluster_truth_table(&nl, c);
                ClusterImpl::Replace(naive_tt_netlist(&tt))
            })
            .collect();
        let rebuilt = substitute(&nl, &part, &impls);
        assert!(check_equiv(&nl, &rebuilt, &EquivConfig::default()).is_equal());
    }

    /// Sum-of-minterms netlist for a truth table (test helper; real
    /// resynthesis lives in blasys-synth).
    fn naive_tt_netlist(tt: &TruthTable) -> Netlist {
        let mut nl = Netlist::new("naive");
        let inputs: Vec<NodeId> = (0..tt.num_inputs())
            .map(|i| nl.add_input(format!("x{i}")))
            .collect();
        for o in 0..tt.num_outputs() {
            let mut acc: Option<NodeId> = None;
            for row in 0..tt.rows() {
                if !tt.get(row, o) {
                    continue;
                }
                let mut term: Option<NodeId> = None;
                for (i, &pi) in inputs.iter().enumerate() {
                    let lit = if row >> i & 1 == 1 { pi } else { nl.not(pi) };
                    term = Some(match term {
                        None => lit,
                        Some(t) => nl.and(t, lit),
                    });
                }
                let t = term.unwrap_or_else(|| nl.constant(true));
                acc = Some(match acc {
                    None => t,
                    Some(a) => nl.or(a, t),
                });
            }
            let node = acc.unwrap_or_else(|| nl.constant(false));
            nl.mark_output(format!("y{o}"), node);
        }
        nl
    }

    #[test]
    fn substitution_with_constant_replacement_changes_function() {
        let nl = adder(4);
        let part = decompose(&nl, &DecompConfig::default());
        // Replace the first cluster with all-zero outputs.
        let mut impls = vec![ClusterImpl::Keep; part.len()];
        let c0 = &part.clusters()[0];
        let mut zeros = Netlist::new("zeros");
        for i in 0..c0.inputs().len() {
            zeros.add_input(format!("x{i}"));
        }
        let z = zeros.constant(false);
        for o in 0..c0.outputs().len() {
            zeros.mark_output(format!("y{o}"), z);
        }
        impls[0] = ClusterImpl::Replace(zeros);
        let rebuilt = substitute(&nl, &part, &impls);
        assert_eq!(rebuilt.num_inputs(), nl.num_inputs());
        assert_eq!(rebuilt.num_outputs(), nl.num_outputs());
        assert!(!check_equiv(&nl, &rebuilt, &EquivConfig::default()).is_equal());
    }
}
