//! Umbrella crate re-exporting the BLASYS reproduction workspace.
//!
//! Each member crate is re-exported under a short alias so examples
//! and downstream users need a single dependency:
//!
//! | alias | crate | role |
//! |---|---|---|
//! | [`logic`] | `blasys-logic` | netlists, simulation, truth tables, BLIF/Verilog I/O |
//! | [`bmf`] | `blasys-bmf` | Boolean matrix factorization (ASSO, GreConD, GF(2)) |
//! | [`decomp`] | `blasys-decomp` | k×m-cut decomposition and substitution |
//! | [`synth`] | `blasys-synth` | two-level minimization, techmap, area/power/delay |
//! | [`lint`] | `blasys-lint` | static netlist analysis + flow-invariant verifiers |
//! | [`blasys`] | `blasys-core` | the flow: profile → explore → synthesize → certify |
//! | [`sat`] | `blasys-sat` | CDCL solver, miters, certified error bounds |
//! | [`circuits`] | `blasys-circuits` | the paper's benchmark generators |
//! | [`salsa`] | `blasys-salsa` | SALSA comparison baseline |
//! | [`par`] | `blasys-par` | scoped work-stealing thread pool |
//! | [`obs`] | `blasys-obs` | spans, metrics registry, flight recorder |
//! | [`serve`] | `blasys-serve` | HTTP service with a content-addressed session cache |
//!
//! The `blasys` command-line driver lives in `crates/cli` (binary
//! only, not re-exported); the experiment harness regenerating the
//! paper's tables lives in `crates/bench`. See the repository README
//! and `docs/USAGE.md` for the end-to-end story.
pub use blasys_bmf as bmf;
pub use blasys_circuits as circuits;
pub use blasys_core as blasys;
pub use blasys_decomp as decomp;
pub use blasys_lint as lint;
pub use blasys_logic as logic;
pub use blasys_obs as obs;
pub use blasys_par as par;
pub use blasys_salsa as salsa;
pub use blasys_sat as sat;
pub use blasys_serve as serve;
pub use blasys_synth as synth;
