//! Umbrella crate re-exporting the BLASYS reproduction workspace.
pub use blasys_bmf as bmf;
pub use blasys_circuits as circuits;
pub use blasys_core as blasys;
pub use blasys_decomp as decomp;
pub use blasys_logic as logic;
pub use blasys_par as par;
pub use blasys_salsa as salsa;
pub use blasys_sat as sat;
pub use blasys_synth as synth;
