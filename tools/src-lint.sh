#!/usr/bin/env bash
# Source gate: no new unwrap()/expect() in non-test code of
# crates/logic and crates/blasys.
#
# Counts unwrap()/expect() occurrences per file, ignoring everything
# from the first `#[cfg(test)]` onward and comment-only lines, then
# compares against the audited caps in tools/src-lint-allow.txt
# (missing file = cap 0). A count over its cap fails the gate: either
# handle the error properly or — for a reviewed internal-invariant
# site — raise the cap in the allowlist with a justification.
set -euo pipefail
cd "$(dirname "$0")/.."

allow="tools/src-lint-allow.txt"
fail=0

cap_for() {
    # shellcheck disable=SC2013
    awk -v f="$1" '$1 == f { print $2; found = 1 } END { if (!found) print 0 }' "$allow"
}

for f in crates/logic/src/*.rs crates/blasys/src/*.rs; do
    n=$(awk '/#\[cfg\(test\)\]/ { exit } { print }' "$f" \
        | grep -vE '^[[:space:]]*(//|///|//!)' \
        | grep -cE '\.unwrap\(\)|\.expect\(' || true)
    cap=$(cap_for "$f")
    if [ "$n" -gt "$cap" ]; then
        echo "src-lint: $f has $n unwrap()/expect() in non-test code (allowed: $cap)" >&2
        echo "          handle the error (see LogicError / FlowError) or, for an" >&2
        echo "          audited internal invariant, raise the cap in $allow" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "src-lint: OK (non-test unwrap/expect within audited caps)"
